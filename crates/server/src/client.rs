//! Client-side driver for mailroom sessions.
//!
//! A [`MailroomClient`] is one simulated (or real) sender: it performs the
//! session handshake, runs the client half of the one-time setup, then
//! submits emails one round at a time — or in coalesced batches via
//! [`MailroomClient::process_batch`] — reusing the session state exactly as
//! the provider does. Examples, the concurrency tests and the
//! `throughput_mailroom` benchmark spin up N of these on N channels to put
//! concurrent load on a [`crate::Mailroom`].

use std::sync::Arc;

use rand::Rng;

use pretzel_classifiers::{LinearModel, SparseVector};
use pretzel_core::registry::{ClientContext, FunctionModule, WireTag};
use pretzel_core::search::SearchFunction;
use pretzel_core::session::{variant_byte, ClientSession, EmailPayload, Verdict};
use pretzel_core::spam::{AheVariant, SpamFunction};
use pretzel_core::topic::{CandidateMode, TopicFunction};
use pretzel_core::virus::VirusFunction;
use pretzel_core::{PretzelConfig, PretzelError};
use pretzel_transport::wire::{
    Capabilities, CodecChannel, HandshakeAck, HandshakeError, HandshakeOffer, NegotiatedProfile,
    ProtocolVersion,
};
use pretzel_transport::Channel;

use crate::{
    ServerError, ACK_ACCEPTED, ACK_BUSY, MAX_BATCH_ROUNDS, ROUND_BATCH, ROUND_BYE, ROUND_EMAIL,
};

/// Everything a client needs to open one session: which function module to
/// run (built-in or custom-registered — the provider's registry must know
/// its wire tag) and the client-side setup parameters, which must agree
/// with the provider's configuration (the parameter preset and, for topic
/// sessions, the candidate mode — both fix the shapes of ciphertexts and
/// circuits).
#[derive(Clone)]
pub struct ClientSpec {
    /// The function module this session runs.
    pub module: Arc<dyn FunctionModule>,
    /// Client-side setup parameters (preset, AHE variant, topic knobs).
    pub ctx: ClientContext,
    /// Oldest protocol version this client accepts.
    pub min_version: ProtocolVersion,
    /// Newest protocol version this client accepts. When this is
    /// [`ProtocolVersion::V1`] the client sends the frozen legacy 2-byte
    /// handshake and never negotiates.
    pub max_version: ProtocolVersion,
    /// Optional wire features the client offers (negotiation grants the
    /// intersection with what the provider serves for the module).
    pub capabilities: Capabilities,
}

impl std::fmt::Debug for ClientSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientSpec")
            .field("module", &self.module.display_name())
            .field("wire_tag", &self.module.wire_tag())
            .field("ctx", &self.ctx)
            .field("versions", &(self.min_version, self.max_version))
            .field("capabilities", &self.capabilities)
            .finish()
    }
}

impl ClientSpec {
    /// Starts a [`ClientSpecBuilder`] for any function module — the
    /// full-control entry point (versions, capabilities, topic knobs).
    pub fn builder(module: Arc<dyn FunctionModule>, config: PretzelConfig) -> ClientSpecBuilder {
        ClientSpecBuilder::for_module(module, config)
    }

    /// Spec for any function module with default context knobs — the entry
    /// point for custom-registered modules.
    pub fn for_module(module: Arc<dyn FunctionModule>, config: PretzelConfig) -> Self {
        ClientSpec {
            module,
            ctx: ClientContext::new(config),
            min_version: ProtocolVersion::MIN,
            max_version: ProtocolVersion::MAX,
            capabilities: Capabilities::KNOWN,
        }
    }

    /// Spec for a spam-filtering session with the Pretzel AHE variant.
    pub fn spam(config: PretzelConfig) -> Self {
        Self::for_module(Arc::new(SpamFunction), config)
    }

    /// Spec for a topic-extraction session.
    #[deprecated(
        note = "use `ClientSpecBuilder::topic(config).topic_mode(mode).candidate_model(model).build()`"
    )]
    pub fn topic(
        config: PretzelConfig,
        mode: CandidateMode,
        candidate_model: Option<LinearModel>,
    ) -> Self {
        let mut spec = Self::for_module(Arc::new(TopicFunction), config);
        spec.ctx.topic_mode = mode;
        spec.ctx.candidate_model = candidate_model;
        spec
    }

    /// Spec for a virus-scanning session.
    pub fn virus(config: PretzelConfig) -> Self {
        Self::for_module(Arc::new(VirusFunction), config)
    }

    /// Spec for an encrypted-keyword-search session (always served over
    /// RLWE; the variant byte is carried but ignored by search sessions).
    pub fn search(config: PretzelConfig) -> Self {
        Self::for_module(Arc::new(SearchFunction), config)
    }

    /// Same spec with a different AHE variant.
    pub fn with_variant(mut self, variant: AheVariant) -> Self {
        self.ctx.variant = variant;
        self
    }
}

/// Builder for a [`ClientSpec`]: pick a function module, then adjust the
/// context knobs and the wire-protocol envelope (version range, offered
/// capabilities) before [`ClientSpecBuilder::build`].
///
/// ```
/// # use pretzel_server::ClientSpecBuilder;
/// # use pretzel_core::topic::CandidateMode;
/// # let config = pretzel_core::PretzelConfig::test();
/// let spec = ClientSpecBuilder::topic(config)
///     .topic_mode(CandidateMode::Full)
///     .batched(false) // negotiate v2 but without the batching capability
///     .build();
/// ```
#[derive(Clone, Debug)]
pub struct ClientSpecBuilder {
    spec: ClientSpec,
}

impl ClientSpecBuilder {
    /// Builder for any function module (built-in or custom-registered).
    pub fn for_module(module: Arc<dyn FunctionModule>, config: PretzelConfig) -> Self {
        ClientSpecBuilder {
            spec: ClientSpec::for_module(module, config),
        }
    }

    /// Builder for a spam-filtering session.
    pub fn spam(config: PretzelConfig) -> Self {
        Self::for_module(Arc::new(SpamFunction), config)
    }

    /// Builder for a topic-extraction session (the replacement for the
    /// deprecated positional `ClientSpec::topic`).
    pub fn topic(config: PretzelConfig) -> Self {
        Self::for_module(Arc::new(TopicFunction), config)
    }

    /// Builder for a virus-scanning session.
    pub fn virus(config: PretzelConfig) -> Self {
        Self::for_module(Arc::new(VirusFunction), config)
    }

    /// Builder for an encrypted-keyword-search session.
    pub fn search(config: PretzelConfig) -> Self {
        Self::for_module(Arc::new(SearchFunction), config)
    }

    /// Selects the AHE variant.
    pub fn variant(mut self, variant: AheVariant) -> Self {
        self.spec.ctx.variant = variant;
        self
    }

    /// Selects the candidate mode for topic sessions.
    pub fn topic_mode(mut self, mode: CandidateMode) -> Self {
        self.spec.ctx.topic_mode = mode;
        self
    }

    /// Supplies the local candidate-selection model for topic sessions.
    pub fn candidate_model(mut self, model: Option<LinearModel>) -> Self {
        self.spec.ctx.candidate_model = model;
        self
    }

    /// Offers the protocol version range `min..=max`.
    pub fn versions(mut self, min: ProtocolVersion, max: ProtocolVersion) -> Self {
        self.spec.min_version = min;
        self.spec.max_version = max;
        self
    }

    /// Pins the client to the frozen legacy protocol: a v1-only version
    /// range, the 2-byte handshake, no negotiation, no capabilities —
    /// exactly what a not-yet-upgraded peer sends during a rolling upgrade.
    pub fn legacy_v1(self) -> Self {
        self.versions(ProtocolVersion::V1, ProtocolVersion::V1)
            .capabilities(Capabilities::NONE)
    }

    /// Replaces the offered capability set.
    pub fn capabilities(mut self, capabilities: Capabilities) -> Self {
        self.spec.capabilities = capabilities;
        self
    }

    /// Adds or removes [`Capabilities::ROUND_BATCH`] from the offer. With
    /// batching off (or unnegotiated), [`MailroomClient::process_batch`]
    /// transparently degrades to sequential per-email rounds.
    pub fn batched(mut self, batched: bool) -> Self {
        self.spec.capabilities = if batched {
            self.spec.capabilities | Capabilities::ROUND_BATCH
        } else {
            Capabilities::from_bits(
                self.spec.capabilities.bits() & !Capabilities::ROUND_BATCH.bits(),
            )
        };
        self
    }

    /// Finalizes the spec.
    pub fn build(self) -> ClientSpec {
        self.spec
    }
}

/// One live client session against a mailroom.
pub struct MailroomClient<C: Channel> {
    channel: CodecChannel<C>,
    session: ClientSession,
    emails: u64,
}

impl<C: Channel> MailroomClient<C> {
    /// Opens a session: sends the handshake (a legacy 2-byte request when
    /// the spec is pinned to v1, a versioned [`HandshakeOffer`] otherwise),
    /// waits for the accept/busy ack — and, for offers, the provider's
    /// [`HandshakeAck`] picking the version and capabilities — then runs the
    /// client half of the protocol setup through the negotiated codec.
    ///
    /// Returns [`ServerError::Busy`] when the mailroom refused the session
    /// (bounded-queue backpressure) — the call returns promptly rather than
    /// waiting for capacity. A structured refusal (unknown tag, no version
    /// overlap, required capability denied) surfaces as
    /// [`ServerError::Handshake`].
    pub fn connect<R: Rng>(
        mut channel: C,
        spec: &ClientSpec,
        rng: &mut R,
    ) -> Result<Self, ServerError> {
        let legacy = spec.max_version == ProtocolVersion::V1;
        let request = if legacy {
            vec![spec.module.wire_tag(), variant_byte(spec.ctx.variant)]
        } else {
            HandshakeOffer {
                min_version: spec.min_version.as_byte(),
                max_version: spec.max_version.as_byte(),
                wire_tag: spec.module.wire_tag(),
                variant: variant_byte(spec.ctx.variant),
                capabilities: spec.capabilities,
            }
            .encode()
        };
        // A refused session may already have been hung up on by the
        // provider (the busy ack is buffered, the channel closed), in which
        // case the handshake send fails — drain the ack before deciding
        // which error to surface.
        let send_result = channel.send(&request);
        let ack = match channel.recv() {
            Ok(ack) => ack,
            Err(recv_err) => {
                return Err(match send_result {
                    Err(send_err) => send_err.into(),
                    Ok(()) => recv_err.into(),
                })
            }
        };
        match ack.as_slice() {
            [ACK_ACCEPTED] => {}
            [ACK_BUSY] => return Err(ServerError::Busy),
            other => {
                return Err(ServerError::Handshake(HandshakeError::Malformed(format!(
                    "unexpected ack frame {other:?}"
                ))))
            }
        }
        // Legacy sessions never negotiate: no second ack exists on the wire
        // (byte-identical to the pre-versioning protocol).
        let profile = if legacy {
            NegotiatedProfile::legacy_v1()
        } else {
            match HandshakeAck::decode(&channel.recv()?)? {
                HandshakeAck::Accept {
                    version,
                    capabilities,
                } => NegotiatedProfile {
                    version,
                    capabilities,
                },
                HandshakeAck::Refuse(err) => return Err(ServerError::Handshake(err)),
            }
        };
        let mut channel = CodecChannel::new(channel, profile.version);
        let module = spec.module.client_setup(&mut channel, &spec.ctx, rng)?;
        Ok(MailroomClient {
            channel,
            session: ClientSession::from_module(module).with_profile(profile),
            emails: 0,
        })
    }

    /// The profile this session negotiated: protocol version and granted
    /// capabilities (the legacy profile for v1-pinned specs).
    pub fn negotiated(&self) -> NegotiatedProfile {
        self.session.negotiated()
    }

    /// Wire tag of the function module this session runs.
    pub fn wire_tag(&self) -> WireTag {
        self.session.wire_tag()
    }

    /// Human-readable name of the function module this session runs.
    pub fn display_name(&self) -> &'static str {
        self.session.display_name()
    }

    /// Client-side storage consumed by the encrypted model, in bytes.
    pub fn model_storage_bytes(&self) -> usize {
        self.session.model_storage_bytes()
    }

    /// Emails submitted so far on this session.
    pub fn emails_sent(&self) -> u64 {
        self.emails
    }

    /// Offline phase, client side: precomputes pooled state (pre-garbled
    /// argmax circuits for topic sessions, Paillier randomizers for Baseline
    /// sessions) covering up to `budget` future emails. Purely local — no
    /// traffic — so it can run while the connection is idle.
    pub fn precompute<R: Rng>(&mut self, budget: usize, rng: &mut R) -> usize {
        self.session.precompute(budget, rng)
    }

    /// Emails the client's offline pools can serve without inline work.
    pub fn pool_depth(&self) -> usize {
        self.session.pool_depth()
    }

    /// Submits one email for a secure per-email round.
    pub fn process<R: Rng>(
        &mut self,
        payload: &EmailPayload,
        rng: &mut R,
    ) -> Result<Verdict, ServerError> {
        self.channel.send(&[ROUND_EMAIL])?;
        let verdict = self
            .session
            .process_round(&mut self.channel, payload, rng)?;
        self.emails += 1;
        Ok(verdict)
    }

    /// Submits one batch of emails as a single coalesced exchange: one
    /// control frame announces the round count, then the session's module
    /// runs its batched protocol (see
    /// [`pretzel_core::ClientModule::process_batch`]). Verdicts equal
    /// calling [`MailroomClient::process`] per payload; an empty batch is a
    /// no-op.
    ///
    /// Batching is gated by the negotiated [`Capabilities::ROUND_BATCH`]
    /// bit: on a session without it (any v1 session, or a v2 session that
    /// did not offer/get the bit) this method transparently degrades to a
    /// sequential per-email loop — same verdicts, more round trips — so
    /// callers never need to branch on the peer's protocol generation.
    pub fn process_batch<R: Rng>(
        &mut self,
        payloads: &[EmailPayload],
        rng: &mut R,
    ) -> Result<Vec<Verdict>, ServerError> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        if !self.negotiated().supports(Capabilities::ROUND_BATCH) {
            let mut verdicts = Vec::with_capacity(payloads.len());
            for payload in payloads {
                verdicts.push(self.process(payload, rng)?);
            }
            return Ok(verdicts);
        }
        if payloads.len() > MAX_BATCH_ROUNDS {
            return Err(ServerError::Control(format!(
                "batch of {} rounds exceeds the {MAX_BATCH_ROUNDS}-round cap",
                payloads.len()
            )));
        }
        let mut frame = [ROUND_BATCH, 0, 0, 0, 0];
        frame[1..].copy_from_slice(&(payloads.len() as u32).to_le_bytes());
        self.channel.send(&frame)?;
        let verdicts = self
            .session
            .process_batch(&mut self.channel, payloads, rng)?;
        self.emails += verdicts.len() as u64;
        Ok(verdicts)
    }

    /// Convenience for spam sessions: classify one email's token counts.
    pub fn classify_spam<R: Rng>(
        &mut self,
        features: &SparseVector,
        rng: &mut R,
    ) -> Result<bool, ServerError> {
        match self.process(&EmailPayload::Tokens(features.clone()), rng)? {
            Verdict::Spam { is_spam } => Ok(is_spam),
            other => Err(ServerError::Pretzel(PretzelError::Protocol(format!(
                "expected a spam verdict, got {other:?}"
            )))),
        }
    }

    /// Convenience for topic sessions: run one extraction round, returning
    /// the candidate set that was submitted (the chosen index goes to the
    /// provider, per Guarantee 3).
    pub fn extract_topic<R: Rng>(
        &mut self,
        features: &SparseVector,
        rng: &mut R,
    ) -> Result<Vec<usize>, ServerError> {
        match self.process(&EmailPayload::Tokens(features.clone()), rng)? {
            Verdict::Topic { candidates } => Ok(candidates),
            other => Err(ServerError::Pretzel(PretzelError::Protocol(format!(
                "expected a topic verdict, got {other:?}"
            )))),
        }
    }

    /// Convenience for virus sessions: scan one attachment.
    pub fn scan_attachment<R: Rng>(
        &mut self,
        attachment: &[u8],
        rng: &mut R,
    ) -> Result<bool, ServerError> {
        match self.process(&EmailPayload::Attachment(attachment.to_vec()), rng)? {
            Verdict::Virus { is_malicious } => Ok(is_malicious),
            other => Err(ServerError::Pretzel(PretzelError::Protocol(format!(
                "expected a virus verdict, got {other:?}"
            )))),
        }
    }

    /// Convenience for search sessions: index one email body under `doc_id`
    /// at the provider, returning the number of encrypted postings stored.
    pub fn index_email<R: Rng>(
        &mut self,
        doc_id: u64,
        body: &str,
        rng: &mut R,
    ) -> Result<usize, ServerError> {
        let payload = EmailPayload::SearchIndex {
            doc_id,
            body: body.to_string(),
        };
        match self.process(&payload, rng)? {
            Verdict::SearchIndexed { postings } => Ok(postings),
            other => Err(ServerError::Pretzel(PretzelError::Protocol(format!(
                "expected a search-index verdict, got {other:?}"
            )))),
        }
    }

    /// Convenience for search sessions: run one single-keyword query round,
    /// returning the ids of the matching indexed emails.
    pub fn search_keyword<R: Rng>(
        &mut self,
        keyword: &str,
        rng: &mut R,
    ) -> Result<Vec<u64>, ServerError> {
        match self.process(&EmailPayload::SearchQuery(keyword.to_string()), rng)? {
            Verdict::SearchHits { ids, .. } => Ok(ids),
            other => Err(ServerError::Pretzel(PretzelError::Protocol(format!(
                "expected search hits, got {other:?}"
            )))),
        }
    }

    /// Ends the session cleanly (provider marks it completed) and returns
    /// the underlying channel, unwrapped from the session's codec.
    pub fn finish(mut self) -> Result<C, ServerError> {
        self.channel.send(&[ROUND_BYE])?;
        self.channel.flush()?;
        Ok(self.channel.into_inner())
    }

    /// Tears the session down *without* the goodbye frame: the channel is
    /// dropped mid-protocol, exactly as if the client process vanished. The
    /// provider worker observes a closed channel on its next read and marks
    /// the session [`crate::SessionState::Failed`] — never poisoning other
    /// sessions.
    ///
    /// This is deliberate fault injection for churn and robustness
    /// scenarios (see the `pretzel_scenarios` crate); well-behaved clients
    /// use [`MailroomClient::finish`].
    pub fn abandon(self) {
        drop(self.channel);
    }
}
