//! The provider mailroom: a worker pool serving many concurrent sessions.
//!
//! Lifecycle of one session, as seen from the provider:
//!
//! 1. **Intake** — [`Mailroom::submit`] receives a connected [`Channel`]
//!    (from a [`pretzel_transport::TcpAcceptor`], a
//!    [`pretzel_transport::memory_pair`], or anything else). The channel is
//!    wrapped in two [`MeteredChannel`] layers — a per-session meter and the
//!    fleet-wide meter — registered under a fresh [`SessionId`], and offered
//!    to the bounded work queue. A full queue refuses the session on the
//!    spot: the client receives [`crate::ACK_BUSY`] and the submit call
//!    returns [`ServerError::Backpressure`]. Otherwise the client receives
//!    [`crate::ACK_ACCEPTED`] inside the same queue-slot reservation, so the
//!    ack can never race the capacity check.
//! 2. **Handshake** — a worker pops the session and reads the first frame.
//!    A legacy two-byte request (function-module wire tag + [`AheVariant`])
//!    starts a frozen **v1** session, byte-identical to the pre-versioning
//!    protocol. A magic-prefixed
//!    [`pretzel_transport::wire::HandshakeOffer`] starts **negotiation**:
//!    the worker resolves the tag through the registry, intersects the
//!    offered capabilities with [`MailroomConfig::capabilities`] and the
//!    module's declared needs, picks the newest common version, and acks —
//!    or refuses with a structured
//!    [`pretzel_transport::wire::HandshakeError`] that fails only this
//!    session. All later frames travel through the negotiated codec
//!    (identity for v1, checksummed framing for v2).
//! 3. **Setup reuse** — the worker runs the protocol's setup phase once
//!    (joint randomness, encrypted model transfer, base OTs) and keeps the
//!    resulting [`ProviderSession`] for the whole session.
//! 4. **Per-email rounds** — the client drives rounds with control frames:
//!    [`crate::ROUND_EMAIL`] starts one secure classification over the
//!    established session state; [`crate::ROUND_BATCH`] (carrying a `u32`
//!    count) starts one coalesced batch of rounds;
//!    [`crate::ROUND_BYE`] ends the session.
//!    The session's **offline phase** runs one of two ways. With a fleet
//!    precompute bank configured ([`MailroomConfigBuilder::bank`]),
//!    background producer threads keep shared per-kind reservoirs full and
//!    the session draws artifacts from them on demand (work-stealing, with
//!    an inline fallback when a reservoir runs dry). Without a bank, the
//!    worker runs the legacy inline top-up after setup and again after
//!    every round ([`pretzel_core::ProviderSession::precompute`], up to the
//!    deprecated [`MailroomConfig::precompute_budget`] pooled rounds) — the
//!    top-up overlaps with the client's own per-email computation and
//!    network round trips. Either way the pool gauges are published on the
//!    session's [`Meter`] ([`Meter::set_pool_gauge`]) and surface in
//!    [`SessionStats::pool_depth`]/[`SessionStats::pools`] and
//!    [`MailroomReport::pool_depth_total`]/[`MailroomReport::reservoir_depth`].
//! 5. **Teardown** — on `BYE` the session completes; on any error (including
//!    the client vanishing mid-protocol) it is marked failed, the worker
//!    drops the channel and simply moves on to the next queued session — one
//!    misbehaving client never takes the mailroom down.
//!
//! [`Mailroom::shutdown`] closes the intake, lets queued and in-flight
//! sessions finish, joins every worker, and returns a [`MailroomReport`]
//! with per-session and fleet-wide accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use pretzel_core::bank::{
    BankConfig, BankReport, PrecomputeBank, PrecomputeSource, ReservoirStats,
};
use pretzel_core::registry::{ProtocolRegistry, WireTag};
use pretzel_core::session::{variant_from_byte, ProviderModelSuite, ProviderSession};
use pretzel_core::spam::AheVariant;
use pretzel_transport::wire::{
    negotiate, Capabilities, CodecChannel, HandshakeAck, HandshakeError, HandshakeOffer,
    NegotiatedProfile, NegotiationPolicy, ProtocolVersion,
};
use pretzel_transport::{Channel, Meter, MeteredChannel, PoolKindGauge, TcpAcceptor};

use crate::queue::{BoundedQueue, PushError};
use crate::{
    ServerError, ACK_ACCEPTED, ACK_BUSY, MAX_BATCH_ROUNDS, ROUND_BATCH, ROUND_BYE, ROUND_EMAIL,
};

/// Identifier of one client session, unique within a mailroom's lifetime.
pub type SessionId = u64;

/// Tuning knobs for a [`Mailroom`].
#[derive(Clone, Debug)]
pub struct MailroomConfig {
    /// Number of worker threads serving sessions concurrently.
    pub workers: usize,
    /// Capacity of the bounded intake queue. Together with `workers` this
    /// caps provider-side memory: at most `workers` active plus
    /// `queue_capacity` waiting sessions exist at any moment.
    pub queue_capacity: usize,
    /// Base seed for the per-session provider RNG streams (each session
    /// derives its own stream from this and its [`SessionId`], so runs are
    /// reproducible given a fixed seed and submission order).
    pub rng_seed: u64,
    /// Offline-phase budget: how many future rounds a worker precomputes
    /// for its session after setup and again after every served round
    /// (pre-garbled circuits etc. — see
    /// [`pretzel_core::ProviderSession::precompute`]). `0` disables the
    /// offline phase; every round then computes inline. Verdicts and wire
    /// bytes are identical at any budget — only latency moves.
    ///
    /// Deprecated: inline per-session budgets steal worker time from the
    /// online path. Attach a fleet-wide [`BankConfig`] instead
    /// ([`MailroomConfigBuilder::bank`]); when a bank is configured this
    /// budget is ignored and background producers keep the reservoirs full.
    /// The shim stays verdict- and wire-identical to the bank path.
    #[deprecated(
        since = "0.1.0",
        note = "configure a fleet-wide precompute bank via \
                MailroomConfig::builder().bank(..) instead of per-session \
                inline budgets"
    )]
    pub precompute_budget: usize,
    /// Fleet-wide precompute bank. `None` (the default) keeps the legacy
    /// inline offline phase; `Some` starts background producer threads that
    /// keep per-kind reservoirs full, and workers draw from them instead of
    /// precomputing inline.
    pub bank: Option<BankConfig>,
    /// Newest protocol version this mailroom serves. v1 is always served
    /// (the legacy handshake has no version field to refuse), so lowering
    /// this to [`ProtocolVersion::V1`] simulates a not-yet-upgraded
    /// provider during a rolling upgrade.
    pub max_version: ProtocolVersion,
    /// Capabilities the mailroom is willing to grant. Sessions get the
    /// intersection of this, the client's offer, and the module's declared
    /// required/optional bits.
    pub capabilities: Capabilities,
}

impl MailroomConfig {
    /// Starts a [`MailroomConfigBuilder`] seeded with the defaults —
    /// preferred over filling the struct literally, since new tuning knobs
    /// are added over time.
    pub fn builder() -> MailroomConfigBuilder {
        MailroomConfigBuilder {
            config: MailroomConfig::default(),
        }
    }
}

impl Default for MailroomConfig {
    #[allow(deprecated)] // the legacy budget keeps its default until removal
    fn default() -> Self {
        MailroomConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 64,
            rng_seed: 0x4d41_494c_524f_4f4d, // "MAILROOM"
            precompute_budget: 2,
            bank: None,
            max_version: ProtocolVersion::MAX,
            capabilities: Capabilities::KNOWN,
        }
    }
}

/// Builder for a [`MailroomConfig`]; see [`MailroomConfig::builder`].
#[derive(Clone, Debug)]
pub struct MailroomConfigBuilder {
    config: MailroomConfig,
}

impl MailroomConfigBuilder {
    /// Sets the number of worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sets the intake queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the base seed for per-session provider RNG streams.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.config.rng_seed = seed;
        self
    }

    /// Sets the offline-phase precompute budget.
    #[deprecated(
        since = "0.1.0",
        note = "configure a fleet-wide precompute bank via \
                MailroomConfigBuilder::bank instead of per-session inline \
                budgets"
    )]
    #[allow(deprecated)] // writes the equally-deprecated config field
    pub fn precompute_budget(mut self, budget: usize) -> Self {
        self.config.precompute_budget = budget;
        self
    }

    /// Enables the fleet-wide precompute bank with the given configuration.
    /// Workers then draw offline artifacts from shared reservoirs kept full
    /// by background producer threads, and the deprecated per-session
    /// inline budget is ignored.
    pub fn bank(mut self, bank: BankConfig) -> Self {
        self.config.bank = Some(bank);
        self
    }

    /// Sets the bank's background producer thread count, enabling the bank
    /// with defaults if it was not configured yet.
    pub fn bank_producers(mut self, threads: usize) -> Self {
        let bank = self.config.bank.take().unwrap_or_default();
        self.config.bank = Some(bank.producer_threads(threads));
        self
    }

    /// Sets the target depth for one reservoir kind, enabling the bank with
    /// defaults if it was not configured yet.
    pub fn reservoir_target(mut self, kind: &'static str, target: usize) -> Self {
        let bank = self.config.bank.take().unwrap_or_default();
        self.config.bank = Some(bank.target(kind, target));
        self
    }

    /// Sets the bank's low/high watermarks (percent of target), enabling the
    /// bank with defaults if it was not configured yet.
    pub fn bank_watermarks(mut self, low_pct: u32, high_pct: u32) -> Self {
        let bank = self.config.bank.take().unwrap_or_default();
        self.config.bank = Some(bank.watermarks(low_pct, high_pct));
        self
    }

    /// Caps the newest protocol version served.
    pub fn max_version(mut self, version: ProtocolVersion) -> Self {
        self.config.max_version = version;
        self
    }

    /// Sets the grantable capability mask.
    pub fn capabilities(mut self, capabilities: Capabilities) -> Self {
        self.config.capabilities = capabilities;
        self
    }

    /// Finalizes the config.
    pub fn build(self) -> MailroomConfig {
        self.config
    }
}

/// Where a session is in its lifecycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Accepted and waiting for a worker.
    Queued,
    /// A worker is running the protocol.
    Active,
    /// The client said goodbye after zero or more rounds.
    Completed,
    /// The session aborted; the payload is a human-readable reason
    /// (handshake garbage, protocol error, client disconnect, …).
    Failed(String),
    /// Refused at intake because the queue was full.
    Rejected,
}

/// Snapshot of one session's accounting.
#[derive(Clone, Debug)]
pub struct SessionStats {
    /// The session's identifier.
    pub id: SessionId,
    /// Wire tag of the function module the session ran (`None` until the
    /// handshake has been read, or if it never resolved).
    pub kind: Option<WireTag>,
    /// Display name of the module behind [`SessionStats::kind`], resolved
    /// from the mailroom's registry at handshake time.
    pub kind_name: Option<&'static str>,
    /// Protocol version the session negotiated (`None` until the handshake
    /// resolved; legacy 2-byte handshakes record
    /// [`ProtocolVersion::V1`]).
    pub version: Option<ProtocolVersion>,
    /// Capability bits granted to the session (always empty for v1).
    pub capabilities: Capabilities,
    /// Lifecycle state at snapshot time.
    pub state: SessionState,
    /// Per-email rounds completed so far.
    pub emails: u64,
    /// Topic indices output to the provider (topic sessions only; spam and
    /// virus sessions reveal nothing to the provider).
    pub topics: Vec<usize>,
    /// Payload bytes sent provider→client on this session's channel.
    pub bytes_sent: u64,
    /// Payload bytes received client→provider.
    pub bytes_received: u64,
    /// Messages exchanged in both directions.
    pub messages: u64,
    /// Offline-phase pool depth at snapshot time: rounds the session can
    /// serve from precomputed state without inline garbling. Equals the sum
    /// of the per-kind depths in [`SessionStats::pools`] when the session's
    /// module reports per-kind gauges.
    pub pool_depth: u64,
    /// Per-kind pool gauges (depth and dry-draw fallbacks), sorted by kind
    /// name — the same `KIND_*` naming scheme
    /// [`pretzel_core::bank::ReservoirId`] uses. Empty for modules that
    /// never report per-kind stats.
    pub pools: Vec<(&'static str, PoolKindGauge)>,
    /// Draws that found every pool (local and bank) dry and computed inline,
    /// summed over this session's kinds.
    pub fallback_draws: u64,
}

impl SessionStats {
    /// Depth of one artifact kind's pool at snapshot time (0 when the kind
    /// never reported) — the per-kind counterpart of
    /// [`SessionStats::pool_depth`].
    pub fn reservoir_depth(&self, kind: &str) -> u64 {
        self.pools
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, g)| g.depth)
    }
}

struct SessionRecord {
    kind: Option<WireTag>,
    kind_name: Option<&'static str>,
    version: Option<ProtocolVersion>,
    capabilities: Capabilities,
    state: SessionState,
    emails: u64,
    topics: Vec<usize>,
    meter: Meter,
}

impl SessionRecord {
    fn stats(&self, id: SessionId) -> SessionStats {
        SessionStats {
            id,
            kind: self.kind,
            kind_name: self.kind_name,
            version: self.version,
            capabilities: self.capabilities,
            state: self.state.clone(),
            emails: self.emails,
            topics: self.topics.clone(),
            bytes_sent: self.meter.bytes_sent(),
            bytes_received: self.meter.bytes_received(),
            messages: self.meter.messages_sent() + self.meter.messages_received(),
            pool_depth: self.meter.pool_depth(),
            pools: self.meter.pool_gauges(),
            fallback_draws: self.meter.fallback_draws(),
        }
    }
}

/// The channel type sessions travel the queue as: the submitted transport,
/// boxed, wrapped in the per-session then the fleet meter.
type SessionChannel = MeteredChannel<MeteredChannel<Box<dyn Channel>>>;

struct QueuedSession {
    id: SessionId,
    channel: SessionChannel,
}

struct Shared {
    suite: ProviderModelSuite,
    registry: ProtocolRegistry,
    queue: BoundedQueue<QueuedSession>,
    records: Mutex<HashMap<SessionId, SessionRecord>>,
    fleet: Meter,
    next_id: AtomicU64,
    emails_total: AtomicU64,
    accepting: AtomicBool,
    rng_seed: u64,
    precompute_budget: usize,
    /// Work-stealing handle onto the fleet precompute bank; `None` keeps the
    /// legacy inline offline phase.
    bank_source: Option<Arc<dyn PrecomputeSource>>,
    max_version: ProtocolVersion,
    capabilities: Capabilities,
}

impl Shared {
    fn with_record<R>(&self, id: SessionId, f: impl FnOnce(&mut SessionRecord) -> R) -> Option<R> {
        self.records.lock().get_mut(&id).map(f)
    }
}

/// Aggregate accounting for all sessions of one function module (keyed by
/// its wire tag) — the rows of [`MailroomReport::by_kind`]. Summing the
/// totals across kinds (plus any sessions that never parsed a handshake)
/// reproduces the fleet-wide counters, which
/// `tests/mailroom_concurrency.rs` pins for a mixed fleet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindTotals {
    /// Sessions that handshook as this kind.
    pub sessions: usize,
    /// Per-email rounds served.
    pub emails: u64,
    /// Payload bytes sent provider→client.
    pub bytes_sent: u64,
    /// Payload bytes received client→provider.
    pub bytes_received: u64,
    /// Messages exchanged in both directions.
    pub messages: u64,
    /// Final offline-pool depth summed over this kind's sessions.
    pub pool_depth: u64,
    /// Pool-dry fallback draws summed over this kind's sessions.
    pub fallback_draws: u64,
}

impl KindTotals {
    fn absorb(&mut self, s: &SessionStats) {
        self.sessions += 1;
        self.emails += s.emails;
        self.bytes_sent += s.bytes_sent;
        self.bytes_received += s.bytes_received;
        self.messages += s.messages;
        self.pool_depth += s.pool_depth;
        self.fallback_draws += s.fallback_draws;
    }
}

/// Final accounting returned by [`Mailroom::shutdown`].
#[derive(Clone, Debug)]
pub struct MailroomReport {
    /// Every session ever submitted, in submission order.
    pub sessions: Vec<SessionStats>,
    /// Total per-email rounds served across all sessions.
    pub emails_total: u64,
    /// Fleet-wide payload bytes sent provider→client.
    pub fleet_bytes_sent: u64,
    /// Fleet-wide payload bytes received client→provider.
    pub fleet_bytes_received: u64,
    /// Fleet-wide messages in both directions.
    pub fleet_messages: u64,
    /// Sum of every session's final offline-pool depth — precomputed rounds
    /// banked but never consumed (shutdown waste / warm-pool headroom).
    pub pool_depth_total: u64,
    /// Final per-reservoir accounting of the fleet precompute bank, drained
    /// at shutdown (empty when no bank was configured). Sorted by kind then
    /// parameter fingerprint.
    pub reservoirs: Vec<ReservoirStats>,
}

impl MailroomReport {
    /// Sessions that reached [`SessionState::Completed`].
    pub fn completed(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.state == SessionState::Completed)
            .count()
    }

    /// Per-kind aggregation of the fleet, keyed by wire tag in wire-tag
    /// order (open-ended: any registered module appears here, not just the
    /// built-ins). Kinds no session ran are omitted; sessions whose
    /// handshake never resolved (kind `None`) are excluded, so a
    /// garbage-handshake session can make the per-kind sums fall short of
    /// the fleet meters.
    pub fn by_kind(&self) -> Vec<(WireTag, KindTotals)> {
        let mut by_tag: std::collections::BTreeMap<WireTag, KindTotals> =
            std::collections::BTreeMap::new();
        for s in &self.sessions {
            if let Some(tag) = s.kind {
                by_tag.entry(tag).or_default().absorb(s);
            }
        }
        by_tag.into_iter().collect()
    }

    /// Per-protocol-version aggregation of the fleet — the rolling-upgrade
    /// dashboard: how much traffic is still on v1 and how much has moved to
    /// v2. Sessions whose handshake never resolved a version are excluded,
    /// same as [`MailroomReport::by_kind`].
    pub fn by_version(&self) -> Vec<(ProtocolVersion, KindTotals)> {
        let mut by_version: std::collections::BTreeMap<ProtocolVersion, KindTotals> =
            std::collections::BTreeMap::new();
        for s in &self.sessions {
            if let Some(version) = s.version {
                by_version.entry(version).or_default().absorb(s);
            }
        }
        by_version.into_iter().collect()
    }

    /// Fleet-wide banked depth for one artifact kind at shutdown: the
    /// per-kind counterpart of [`MailroomReport::pool_depth_total`]. Sums
    /// the kind's depth across every session's local pools plus the bank's
    /// reservoirs of that kind.
    pub fn reservoir_depth(&self, kind: &str) -> u64 {
        let sessions: u64 = self.sessions.iter().map(|s| s.reservoir_depth(kind)).sum();
        let bank: u64 = self
            .reservoirs
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.depth)
            .sum();
        sessions + bank
    }

    /// Total pool-dry fallback draws across the fleet: draws that fell
    /// through both the session-local pools and the bank and computed
    /// inline. Counted once, session-side (the bank's own per-reservoir
    /// counters track the same events from the other end).
    pub fn fallback_draws_total(&self) -> u64 {
        self.sessions.iter().map(|s| s.fallback_draws).sum()
    }

    /// Average payload bytes per served email across the fleet (0 when no
    /// email was served).
    pub fn bytes_per_email(&self) -> f64 {
        if self.emails_total == 0 {
            return 0.0;
        }
        (self.fleet_bytes_sent + self.fleet_bytes_received) as f64 / self.emails_total as f64
    }
}

/// A multi-session provider serving every function module in its registry
/// (spam, topic, virus and encrypted search by default — see
/// [`Mailroom::start_with_registry`] for custom modules) over any
/// [`Channel`] through a worker pool with bounded intake.
pub struct Mailroom {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    bank: Option<PrecomputeBank>,
}

impl Mailroom {
    /// Starts the worker pool serving the four built-in function modules.
    /// `suite` holds the trained models every session is served from; it is
    /// shared read-only across workers.
    pub fn start(suite: ProviderModelSuite, config: MailroomConfig) -> Self {
        Self::start_with_registry(suite, ProtocolRegistry::builtin(), config)
    }

    /// Starts the worker pool with an explicit function-module registry —
    /// the extension point for serving custom protocols: register a module
    /// (see [`pretzel_core::FunctionModule`]) and every worker dispatches
    /// its wire tag without any mailroom changes.
    pub fn start_with_registry(
        suite: ProviderModelSuite,
        registry: ProtocolRegistry,
        config: MailroomConfig,
    ) -> Self {
        assert!(config.workers >= 1, "a mailroom needs at least one worker");
        // Start the bank (if configured) and register every module's fleet
        // plan before any worker can run a session, so key-independent
        // production begins immediately.
        let bank = config.bank.clone().map(PrecomputeBank::start);
        if let Some(bank) = &bank {
            for module in registry.modules() {
                for spec in module.fleet_plan(&suite) {
                    bank.register(spec);
                }
            }
        }
        let bank_source = bank.as_ref().map(|b| b.handle());
        #[allow(deprecated)] // legacy inline budget, served until removal
        let precompute_budget = config.precompute_budget;
        let shared = Arc::new(Shared {
            suite,
            registry,
            queue: BoundedQueue::new(config.queue_capacity),
            records: Mutex::new(HashMap::new()),
            fleet: Meter::new(),
            next_id: AtomicU64::new(0),
            emails_total: AtomicU64::new(0),
            accepting: AtomicBool::new(true),
            rng_seed: config.rng_seed,
            precompute_budget,
            bank_source,
            max_version: config.max_version,
            capabilities: config.capabilities,
        });
        let workers = (0..config.workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mailroom-worker-{idx}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn mailroom worker")
            })
            .collect();
        Mailroom {
            shared,
            workers,
            bank,
        }
    }

    /// Submits a connected client channel as a new session.
    ///
    /// Never blocks. On success the client has already received
    /// [`ACK_ACCEPTED`] and a worker will pick the session up; the returned
    /// id can be used with [`Mailroom::session_stats`]. When the intake
    /// queue is full the client receives [`ACK_BUSY`] (best effort), the
    /// session is recorded as [`SessionState::Rejected`], and
    /// [`ServerError::Backpressure`] is returned.
    pub fn submit<C: Channel + 'static>(&self, channel: C) -> Result<SessionId, ServerError> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let session_meter = Meter::new();
        let boxed: Box<dyn Channel> = Box::new(channel);
        let mut channel = MeteredChannel::with_meter(
            MeteredChannel::with_meter(boxed, self.shared.fleet.clone()),
            session_meter.clone(),
        );
        if !self.shared.accepting.load(Ordering::SeqCst) {
            let _ = channel.send(&[ACK_BUSY]);
            return Err(ServerError::ShuttingDown);
        }
        self.shared.records.lock().insert(
            id,
            SessionRecord {
                kind: None,
                kind_name: None,
                version: None,
                capabilities: Capabilities::NONE,
                state: SessionState::Queued,
                emails: 0,
                topics: Vec::new(),
                meter: session_meter,
            },
        );
        let queued = QueuedSession { id, channel };
        match self.shared.queue.try_push_with(queued, |session| {
            // Runs inside the reserved slot: the ack cannot lie about
            // capacity. A send failure just means the client is already
            // gone; the worker will notice on handshake.
            let _ = session.channel.send(&[ACK_ACCEPTED]);
        }) {
            Ok(()) => Ok(id),
            Err(PushError::Full(mut session)) => {
                let _ = session.channel.send(&[ACK_BUSY]);
                self.shared
                    .with_record(id, |r| r.state = SessionState::Rejected);
                Err(ServerError::Backpressure(id))
            }
            // Closed means shutdown won the race since the `accepting` check
            // above — report that, not a retryable backpressure condition.
            Err(PushError::Closed(mut session)) => {
                let _ = session.channel.send(&[ACK_BUSY]);
                self.shared
                    .with_record(id, |r| r.state = SessionState::Rejected);
                Err(ServerError::ShuttingDown)
            }
        }
    }

    /// Snapshot of one session's stats.
    pub fn session_stats(&self, id: SessionId) -> Option<SessionStats> {
        self.shared.with_record(id, |r| r.stats(id))
    }

    /// Snapshot of every session, in submission order.
    pub fn stats(&self) -> Vec<SessionStats> {
        let records = self.shared.records.lock();
        let mut stats: Vec<SessionStats> = records.iter().map(|(&id, r)| r.stats(id)).collect();
        stats.sort_by_key(|s| s.id);
        stats
    }

    /// Total per-email rounds served so far, fleet-wide.
    pub fn emails_processed(&self) -> u64 {
        self.shared.emails_total.load(Ordering::Relaxed)
    }

    /// Handle to the fleet-wide meter (shared counters over every session's
    /// traffic; see [`Meter`] for the counting semantics).
    pub fn fleet_meter(&self) -> Meter {
        self.shared.fleet.clone()
    }

    /// Sessions currently waiting in the intake queue.
    pub fn queued_sessions(&self) -> usize {
        self.shared.queue.len()
    }

    /// Live snapshot of the fleet precompute bank's reservoirs. Empty when
    /// no bank was configured.
    pub fn bank_report(&self) -> BankReport {
        self.bank.as_ref().map(|b| b.report()).unwrap_or_default()
    }

    /// Blocks until every bank reservoir reaches its high watermark or the
    /// timeout elapses; returns whether the bank is full. Vacuously `true`
    /// without a bank. Benchmarks call this before the timed window so warm
    /// runs measure the draw path, not cold production.
    pub fn wait_until_bank_full(&self, timeout: Duration) -> bool {
        self.bank
            .as_ref()
            .is_none_or(|b| b.wait_until_full(timeout))
    }

    /// Graceful shutdown: refuses new submissions, serves every queued and
    /// in-flight session to completion, joins the workers, and returns the
    /// final accounting.
    pub fn shutdown(mut self) -> MailroomReport {
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Drain the bank after the workers: producer threads park and join,
        // and the final per-reservoir accounting lands in the report.
        let reservoirs = self
            .bank
            .take()
            .map(|bank| bank.shutdown().reservoirs)
            .unwrap_or_default();
        let sessions = self.stats();
        let pool_depth_total = sessions.iter().map(|s| s.pool_depth).sum();
        MailroomReport {
            sessions,
            emails_total: self.shared.emails_total.load(Ordering::Relaxed),
            fleet_bytes_sent: self.shared.fleet.bytes_sent(),
            fleet_bytes_received: self.shared.fleet.bytes_received(),
            fleet_messages: self.shared.fleet.messages_sent()
                + self.shared.fleet.messages_received(),
            pool_depth_total,
            reservoirs,
        }
    }
}

impl Drop for Mailroom {
    /// Closes the intake so workers can drain and exit. Does **not** join
    /// them (a blocking drop could deadlock a test driving a client on the
    /// same thread); use [`Mailroom::shutdown`] for an orderly join.
    fn drop(&mut self) {
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.queue.close();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(mut session) = shared.queue.pop() {
        let id = session.id;
        shared.with_record(id, |r| r.state = SessionState::Active);
        match run_session(shared, id, &mut session.channel) {
            Ok(()) => {
                shared.with_record(id, |r| r.state = SessionState::Completed);
            }
            Err(e) => {
                shared.with_record(id, |r| r.state = SessionState::Failed(e.to_string()));
            }
        }
        // The channel drops here; a client stuck mid-round observes Closed.
    }
}

/// Reads the session's first frame and resolves its protocol generation:
/// a magic-prefixed [`HandshakeOffer`] negotiates (and is acked or refused
/// on the wire), a legacy 2-byte request is served as frozen v1 with no
/// ack, anything else is a structured [`HandshakeError::Malformed`].
fn handshake(
    shared: &Shared,
    channel: &mut SessionChannel,
) -> Result<(WireTag, u8, NegotiatedProfile), ServerError> {
    let first = channel.recv()?;
    if !HandshakeOffer::looks_like_offer(&first) {
        let &[tag, variant_b] = first.as_slice() else {
            return Err(ServerError::Handshake(HandshakeError::Malformed(format!(
                "first frame is neither a legacy 2-byte handshake nor a v2 offer \
                 ({} bytes)",
                first.len()
            ))));
        };
        return Ok((tag, variant_b, NegotiatedProfile::legacy_v1()));
    }

    // Offering clients wait for an ack, so every refusal is mirrored onto
    // the wire (best effort — the peer may already be gone) before failing
    // this session.
    let refuse = |channel: &mut SessionChannel, err: HandshakeError| -> ServerError {
        let _ = channel.send(&HandshakeAck::Refuse(err.clone()).encode());
        let _ = channel.flush();
        ServerError::Handshake(err)
    };
    let offer = match HandshakeOffer::decode(&first) {
        Ok(offer) => offer,
        Err(e) => return Err(refuse(channel, e)),
    };
    let module = match shared.registry.from_wire_tag(offer.wire_tag) {
        Ok(module) => module,
        Err(_) => {
            return Err(refuse(
                channel,
                HandshakeError::UnknownTag {
                    tag: offer.wire_tag,
                },
            ))
        }
    };
    let policy = NegotiationPolicy {
        min_version: ProtocolVersion::MIN,
        max_version: shared.max_version,
        capabilities: shared.capabilities
            & (module.required_capabilities() | module.optional_capabilities()),
        required: module.required_capabilities(),
    };
    let profile = match negotiate(&offer, &policy) {
        Ok(profile) => profile,
        Err(e) => return Err(refuse(channel, e)),
    };
    channel.send(
        &HandshakeAck::Accept {
            version: profile.version,
            capabilities: profile.capabilities,
        }
        .encode(),
    )?;
    channel.flush()?;
    Ok((offer.wire_tag, offer.variant, profile))
}

fn run_session(
    shared: &Shared,
    id: SessionId,
    channel: &mut SessionChannel,
) -> Result<(), ServerError> {
    let (tag, variant_b, profile) = handshake(shared, channel)?;
    // The registry is the single source of truth for tag resolution: an
    // unregistered tag on the legacy path fails here with its Protocol
    // error (offers were already refused with a structured ack).
    let kind_name = shared.registry.from_wire_tag(tag)?.display_name();
    let variant: AheVariant = variant_from_byte(variant_b)?;
    shared.with_record(id, |r| {
        r.kind = Some(tag);
        r.kind_name = Some(kind_name);
        r.version = Some(profile.version);
        r.capabilities = profile.capabilities;
    });

    // Every post-handshake frame travels through the negotiated codec; the
    // meter handle is captured first since it lives below the codec layer.
    let meter = channel.meter().clone();
    let mut channel = CodecChannel::new(channel, profile.version);

    // One independent, reproducible randomness stream per session.
    let mut rng = StdRng::seed_from_u64(shared.rng_seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut session = match &shared.bank_source {
        Some(source) => ProviderSession::setup_with_source(
            &shared.registry,
            tag,
            &mut channel,
            &shared.suite,
            variant,
            source,
            &mut rng,
        )?,
        None => ProviderSession::setup(
            &shared.registry,
            tag,
            &mut channel,
            &shared.suite,
            variant,
            &mut rng,
        )?,
    }
    .with_profile(profile);

    // Offline phase. Without a bank, precompute inline before the first
    // email arrives (the client is busy with its own setup/feature work
    // meanwhile) and top the pool back up after every round while the
    // channel is idle. With a bank, background producers do that work and
    // the session draws from the shared reservoirs instead. Either way,
    // publish the pool gauges on the session meter.
    let top_up = |session: &mut ProviderSession, rng: &mut StdRng| {
        if shared.bank_source.is_none() {
            #[allow(deprecated)] // the legacy inline shim, served until removal
            session.precompute(shared.precompute_budget, rng);
        }
        meter.set_pool_depth(session.pool_depth() as u64);
        for stats in session.pool_stats() {
            meter.set_pool_gauge(stats.kind, stats.depth, stats.fallback_draws);
        }
    };
    top_up(&mut session, &mut rng);

    // Records one or more served rounds in the session and fleet counters.
    let account = |outputs: &[Option<usize>]| {
        shared
            .emails_total
            .fetch_add(outputs.len() as u64, Ordering::Relaxed);
        shared.with_record(id, |r| {
            r.emails += outputs.len() as u64;
            r.topics.extend(outputs.iter().flatten());
        });
    };

    loop {
        let control = channel.recv()?;
        match control.as_slice() {
            [ROUND_BYE] => return Ok(()),
            [ROUND_EMAIL] => {
                let topic = session.process_round(&mut channel, &mut rng)?;
                account(&[topic]);
                top_up(&mut session, &mut rng);
            }
            [ROUND_BATCH, count @ ..] if count.len() == 4 => {
                if !profile.supports(Capabilities::ROUND_BATCH) {
                    return Err(ServerError::Control(
                        "ROUND_BATCH on a session that never negotiated the \
                         round-batch capability"
                            .into(),
                    ));
                }
                let count = u32::from_le_bytes(count.try_into().expect("4-byte count")) as usize;
                if count == 0 || count > MAX_BATCH_ROUNDS {
                    return Err(ServerError::Control(format!(
                        "batch round count {count} outside 1..={MAX_BATCH_ROUNDS}"
                    )));
                }
                let outputs = session.process_batch(&mut channel, count, &mut rng)?;
                account(&outputs);
                top_up(&mut session, &mut rng);
            }
            other => {
                return Err(ServerError::Control(format!(
                    "unknown round control frame {other:?}"
                )));
            }
        }
    }
}

/// Accepts up to `max_sessions` TCP connections and submits each to the
/// mailroom. Returns the number of sessions actually accepted (backpressure
/// rejections are refused on the wire but still consume an accept slot).
///
/// This is the glue for a socket-serving provider:
///
/// ```no_run
/// # use pretzel_server::{serve_tcp_sessions, Mailroom, MailroomConfig};
/// # use pretzel_transport::TcpAcceptor;
/// # fn demo(suite: pretzel_core::ProviderModelSuite) {
/// let mailroom = Mailroom::start(suite, MailroomConfig::default());
/// let acceptor = TcpAcceptor::bind("127.0.0.1:7878").unwrap();
/// let accepted = serve_tcp_sessions(&mailroom, &acceptor, 1000);
/// println!("served {accepted} sessions");
/// # }
/// ```
pub fn serve_tcp_sessions(
    mailroom: &Mailroom,
    acceptor: &TcpAcceptor,
    max_sessions: usize,
) -> usize {
    let mut accepted = 0;
    for _ in 0..max_sessions {
        match acceptor.accept() {
            Ok((channel, _peer)) => {
                if mailroom.submit(channel).is_ok() {
                    accepted += 1;
                }
            }
            Err(_) => break,
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientSpec, MailroomClient};
    use pretzel_classifiers::nb::{GrNbTrainer, MultinomialNbTrainer};
    use pretzel_classifiers::{LabeledExample, NGramExtractor, SparseVector, Trainer};
    use pretzel_core::search::SearchFunction;
    use pretzel_core::spam::SpamFunction;
    use pretzel_core::topic::{CandidateMode, TopicFunction};
    use pretzel_core::virus::VirusFunction;
    use pretzel_core::PretzelConfig;
    use pretzel_transport::{memory_pair, TcpChannel};

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    pub(crate) fn test_suite() -> ProviderModelSuite {
        let mut spam_corpus = Vec::new();
        let mut topic_corpus = Vec::new();
        for i in 0..20usize {
            spam_corpus.push(example(&[(i % 4, 2), ((i + 1) % 4, 1)], 1));
            spam_corpus.push(example(&[(4 + i % 4, 2), (4 + (i + 1) % 4, 1)], 0));
            for topic in 0..4usize {
                let base = topic * 4;
                topic_corpus.push(example(&[(base, 2), (base + 1 + i % 3, 1)], topic));
            }
        }
        let extractor = NGramExtractor::new(3, 256);
        let mut virus_corpus = Vec::new();
        for i in 0..20u8 {
            let bad = [0xde, 0xad, 0xbe, 0xef, 0xcc, 0xcc, 0xcc, i];
            virus_corpus.push(LabeledExample {
                features: extractor.extract(&bad),
                label: 1,
            });
            let good = format!("regular attachment number {i}");
            virus_corpus.push(LabeledExample {
                features: extractor.extract(good.as_bytes()),
                label: 0,
            });
        }
        ProviderModelSuite {
            spam: GrNbTrainer::default().train(&spam_corpus, 8, 2),
            topic: MultinomialNbTrainer::default().train(&topic_corpus, 16, 4),
            topic_mode: CandidateMode::Full,
            virus: GrNbTrainer::default().train(&virus_corpus, extractor.buckets, 2),
            virus_extractor: extractor,
            config: PretzelConfig::test(),
        }
    }

    fn small_config(workers: usize, queue: usize) -> MailroomConfig {
        MailroomConfig {
            workers,
            queue_capacity: queue,
            rng_seed: 7,
            ..MailroomConfig::default()
        }
    }

    #[test]
    fn serves_a_spam_session_over_memory_channels() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mailroom = Mailroom::start(test_suite(), small_config(1, 4));
        let (provider_end, client_end) = memory_pair();
        let id = mailroom.submit(provider_end).unwrap();

        let mut rng = StdRng::seed_from_u64(1);
        let spec = ClientSpec::spam(PretzelConfig::test());
        let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
        assert!(client.model_storage_bytes() > 0);
        let spammy = SparseVector::from_pairs(vec![(0, 3), (1, 1)]);
        let hammy = SparseVector::from_pairs(vec![(4, 2), (5, 2)]);
        assert!(client.classify_spam(&spammy, &mut rng).unwrap());
        assert!(!client.classify_spam(&hammy, &mut rng).unwrap());
        assert_eq!(client.emails_sent(), 2);
        client.finish().unwrap();

        let report = mailroom.shutdown();
        assert_eq!(report.emails_total, 2);
        assert_eq!(report.completed(), 1);
        let stats = &report.sessions[0];
        assert_eq!(stats.id, id);
        assert_eq!(stats.kind, Some(SpamFunction::WIRE_TAG));
        assert_eq!(stats.kind_name, Some("spam"));
        assert_eq!(stats.state, SessionState::Completed);
        assert_eq!(stats.emails, 2);
        assert!(stats.bytes_sent > 0, "provider ships the encrypted model");
        assert!(stats.bytes_received > 0);
        assert_eq!(
            stats.pool_depth, 2,
            "worker topped the offline pool back up to the default budget"
        );
        assert_eq!(report.pool_depth_total, 2);
        assert!(report.bytes_per_email() > 0.0);
        assert_eq!(
            report.fleet_bytes_sent, stats.bytes_sent,
            "one session: fleet meter equals the session meter"
        );
    }

    #[test]
    fn serves_a_search_session_with_per_kind_accounting() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mailroom = Mailroom::start(test_suite(), small_config(1, 4));
        let (provider_end, client_end) = memory_pair();
        let id = mailroom.submit(provider_end).unwrap();

        let mut rng = StdRng::seed_from_u64(5);
        let spec = ClientSpec::search(PretzelConfig::test());
        let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
        assert_eq!(client.wire_tag(), SearchFunction::WIRE_TAG);
        assert_eq!(client.display_name(), "search");
        assert!(client.model_storage_bytes() > 0);
        assert_eq!(
            client
                .index_email(10, "project pretzel kickoff agenda", &mut rng)
                .unwrap(),
            4
        );
        client
            .index_email(11, "pretzel budget spreadsheet", &mut rng)
            .unwrap();
        let mut hits = client.search_keyword("pretzel", &mut rng).unwrap();
        hits.sort_unstable();
        assert_eq!(hits, vec![10, 11]);
        assert!(client
            .search_keyword("absent", &mut rng)
            .unwrap()
            .is_empty());
        client.finish().unwrap();

        let report = mailroom.shutdown();
        let stats = report.sessions.iter().find(|s| s.id == id).unwrap();
        assert_eq!(stats.kind, Some(SearchFunction::WIRE_TAG));
        assert_eq!(stats.state, SessionState::Completed);
        assert_eq!(stats.emails, 4, "2 index rounds + 2 query rounds");
        assert_eq!(
            stats.pool_depth, 2,
            "worker topped the pre-encrypted response pool back up"
        );

        let by_kind = report.by_kind();
        assert_eq!(by_kind.len(), 1);
        let (kind, totals) = by_kind[0];
        assert_eq!(kind, SearchFunction::WIRE_TAG);
        assert_eq!(totals.sessions, 1);
        assert_eq!(totals.emails, 4);
        assert_eq!(totals.bytes_sent, report.fleet_bytes_sent);
        assert_eq!(totals.bytes_received, report.fleet_bytes_received);
        assert_eq!(totals.messages, report.fleet_messages);
        assert_eq!(totals.pool_depth, report.pool_depth_total);
    }

    #[test]
    fn topic_session_outputs_land_in_provider_stats() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mailroom = Mailroom::start(test_suite(), small_config(1, 4));
        let (provider_end, client_end) = memory_pair();
        let id = mailroom.submit(provider_end).unwrap();

        let mut rng = StdRng::seed_from_u64(2);
        let spec = crate::ClientSpecBuilder::topic(PretzelConfig::test())
            .topic_mode(CandidateMode::Full)
            .build();
        let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
        // Topic 2 owns features 8..12 in the test suite's corpus.
        let email = SparseVector::from_pairs(vec![(8, 3), (9, 1)]);
        let candidates = client.extract_topic(&email, &mut rng).unwrap();
        assert!(candidates.contains(&2));
        client.finish().unwrap();

        let report = mailroom.shutdown();
        let stats = report.sessions.iter().find(|s| s.id == id).unwrap();
        assert_eq!(stats.kind, Some(TopicFunction::WIRE_TAG));
        assert_eq!(stats.topics, vec![2], "the provider learned the topic");
    }

    #[test]
    fn serves_sessions_over_tcp() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mailroom = Mailroom::start(test_suite(), small_config(2, 8));
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr().unwrap();

        let client_thread = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(3);
            let spec = ClientSpec::virus(PretzelConfig::test());
            let chan = TcpChannel::connect(addr).unwrap();
            let mut client = MailroomClient::connect(chan, &spec, &mut rng).unwrap();
            let bad = vec![0xde, 0xad, 0xbe, 0xef, 0xcc, 0xcc, 0xcc, 0x01];
            let verdict = client.scan_attachment(&bad, &mut rng).unwrap();
            client.finish().unwrap();
            verdict
        });

        let accepted = serve_tcp_sessions(&mailroom, &acceptor, 1);
        assert_eq!(accepted, 1);
        assert!(
            client_thread.join().unwrap(),
            "malicious attachment flagged"
        );

        let report = mailroom.shutdown();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.sessions[0].kind, Some(VirusFunction::WIRE_TAG));
    }

    #[test]
    fn garbage_handshake_fails_the_session_not_the_mailroom() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mailroom = Mailroom::start(test_suite(), small_config(1, 4));

        // Session 1: nonsense handshake byte.
        let (provider_end, mut client_end) = memory_pair();
        let bad_id = mailroom.submit(provider_end).unwrap();
        client_end.send(&[0xFF, 0xFF]).unwrap();
        assert_eq!(client_end.recv().unwrap(), vec![ACK_ACCEPTED]);

        // Session 2 on the same mailroom still works end to end.
        let (provider_end, client_end) = memory_pair();
        let ok_id = mailroom.submit(provider_end).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let spec = ClientSpec::spam(PretzelConfig::test());
        let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
        let spammy = SparseVector::from_pairs(vec![(0, 3), (1, 1)]);
        assert!(client.classify_spam(&spammy, &mut rng).unwrap());
        client.finish().unwrap();

        let report = mailroom.shutdown();
        let bad = report.sessions.iter().find(|s| s.id == bad_id).unwrap();
        assert!(matches!(bad.state, SessionState::Failed(_)));
        let ok = report.sessions.iter().find(|s| s.id == ok_id).unwrap();
        assert_eq!(ok.state, SessionState::Completed);
    }

    #[test]
    fn default_spec_negotiates_v2_with_batching() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mailroom = Mailroom::start(test_suite(), small_config(1, 4));
        let (provider_end, client_end) = memory_pair();
        let id = mailroom.submit(provider_end).unwrap();

        let mut rng = StdRng::seed_from_u64(11);
        let spec = ClientSpec::spam(PretzelConfig::test());
        let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
        let profile = client.negotiated();
        assert_eq!(profile.version, ProtocolVersion::V2);
        assert!(profile.supports(Capabilities::ROUND_BATCH));
        let spammy = SparseVector::from_pairs(vec![(0, 3), (1, 1)]);
        assert!(client.classify_spam(&spammy, &mut rng).unwrap());
        client.finish().unwrap();

        let report = mailroom.shutdown();
        let stats = report.sessions.iter().find(|s| s.id == id).unwrap();
        assert_eq!(stats.version, Some(ProtocolVersion::V2));
        assert!(stats.capabilities.contains(Capabilities::ROUND_BATCH));
        let by_version = report.by_version();
        assert_eq!(by_version.len(), 1);
        assert_eq!(by_version[0].0, ProtocolVersion::V2);
        assert_eq!(by_version[0].1.emails, 1);
    }

    #[test]
    fn legacy_v1_spec_is_served_without_negotiation() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mailroom = Mailroom::start(test_suite(), small_config(1, 4));
        let (provider_end, client_end) = memory_pair();
        let id = mailroom.submit(provider_end).unwrap();

        let mut rng = StdRng::seed_from_u64(12);
        let spec = crate::ClientSpecBuilder::spam(PretzelConfig::test())
            .legacy_v1()
            .build();
        let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
        let profile = client.negotiated();
        assert_eq!(profile.version, ProtocolVersion::V1);
        assert!(profile.capabilities.is_empty());
        let spammy = SparseVector::from_pairs(vec![(0, 3), (1, 1)]);
        assert!(client.classify_spam(&spammy, &mut rng).unwrap());
        client.finish().unwrap();

        let report = mailroom.shutdown();
        let stats = report.sessions.iter().find(|s| s.id == id).unwrap();
        assert_eq!(stats.version, Some(ProtocolVersion::V1));
        assert!(stats.capabilities.is_empty());
    }

    #[test]
    fn unknown_tag_offer_is_refused_with_a_structured_ack() {
        use pretzel_transport::wire::{HandshakeAck, HandshakeError, HandshakeOffer};

        let mailroom = Mailroom::start(test_suite(), small_config(1, 4));
        let (provider_end, mut client_end) = memory_pair();
        let id = mailroom.submit(provider_end).unwrap();

        let offer = HandshakeOffer {
            min_version: 1,
            max_version: 2,
            wire_tag: 0xEE,
            variant: 1,
            capabilities: Capabilities::KNOWN,
        };
        client_end.send(&offer.encode()).unwrap();
        assert_eq!(client_end.recv().unwrap(), vec![ACK_ACCEPTED]);
        let ack = HandshakeAck::decode(&client_end.recv().unwrap()).unwrap();
        assert_eq!(
            ack,
            HandshakeAck::Refuse(HandshakeError::UnknownTag { tag: 0xEE })
        );

        let report = mailroom.shutdown();
        let stats = report.sessions.iter().find(|s| s.id == id).unwrap();
        assert!(matches!(stats.state, SessionState::Failed(_)));
    }

    #[test]
    fn v1_capped_mailroom_downgrades_v2_offers() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let config = MailroomConfig::builder()
            .workers(1)
            .queue_capacity(4)
            .rng_seed(7)
            .max_version(ProtocolVersion::V1)
            .build();
        let mailroom = Mailroom::start(test_suite(), config);
        let (provider_end, client_end) = memory_pair();
        mailroom.submit(provider_end).unwrap();

        let mut rng = StdRng::seed_from_u64(13);
        // Default spec offers v1..=v2; the capped provider picks v1 and the
        // capability set collapses to empty.
        let spec = ClientSpec::spam(PretzelConfig::test());
        let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
        let profile = client.negotiated();
        assert_eq!(profile.version, ProtocolVersion::V1);
        assert!(profile.capabilities.is_empty());
        let spammy = SparseVector::from_pairs(vec![(0, 3), (1, 1)]);
        assert!(client.classify_spam(&spammy, &mut rng).unwrap());
        client.finish().unwrap();
        mailroom.shutdown();
    }

    /// The fleet bank must be observationally equivalent to the inline shim:
    /// identical verdicts and identical wire accounting — only the
    /// provenance of offline artifacts changes. Also pins the per-kind
    /// reservoir surfacing: gauges in `SessionStats::pools`, reservoirs in
    /// the shutdown report, and the `reservoir_depth` accessor.
    #[test]
    fn bank_enabled_fleet_matches_the_inline_path() {
        use pretzel_core::bank::{BankConfig, KIND_GARBLINGS, KIND_ZERO_ENCRYPTIONS};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        fn run(bank: bool) -> (Vec<String>, MailroomReport) {
            let mut builder = MailroomConfig::builder()
                .workers(1)
                .queue_capacity(4)
                .rng_seed(7);
            if bank {
                builder = builder
                    .bank(BankConfig::default().rng_seed(0xBA2C))
                    .bank_producers(1)
                    .reservoir_target(KIND_GARBLINGS, 4)
                    .reservoir_target(KIND_ZERO_ENCRYPTIONS, 8);
            }
            let mailroom = Mailroom::start(test_suite(), builder.build());
            if bank {
                assert!(
                    mailroom.wait_until_bank_full(Duration::from_secs(60)),
                    "producers fill the fleet-plan reservoirs before sessions start"
                );
            }

            let mut verdicts = Vec::new();

            // Spam session: provider-side garblings come from the bank.
            {
                let (provider_end, client_end) = memory_pair();
                mailroom.submit(provider_end).unwrap();
                let mut rng = StdRng::seed_from_u64(21);
                let spec = ClientSpec::spam(PretzelConfig::test());
                let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
                let spammy = SparseVector::from_pairs(vec![(0, 3), (1, 1)]);
                let hammy = SparseVector::from_pairs(vec![(4, 2), (5, 2)]);
                for email in [&spammy, &hammy] {
                    let verdict = client.classify_spam(email, &mut rng).unwrap();
                    verdicts.push(format!("spam:{verdict}"));
                }
                client.finish().unwrap();
            }

            // Search session: pre-encrypted responses come from the bank's
            // key-dependent zero-encryption reservoir.
            {
                let (provider_end, client_end) = memory_pair();
                mailroom.submit(provider_end).unwrap();
                let mut rng = StdRng::seed_from_u64(22);
                let spec = ClientSpec::search(PretzelConfig::test());
                let mut client = MailroomClient::connect(client_end, &spec, &mut rng).unwrap();
                client
                    .index_email(10, "project pretzel kickoff agenda", &mut rng)
                    .unwrap();
                let mut hits = client.search_keyword("pretzel", &mut rng).unwrap();
                hits.sort_unstable();
                verdicts.push(format!("search:{hits:?}"));
                client.finish().unwrap();
            }

            (verdicts, mailroom.shutdown())
        }

        let (inline_verdicts, inline_report) = run(false);
        let (bank_verdicts, bank_report) = run(true);

        assert_eq!(
            inline_verdicts, bank_verdicts,
            "bank-drawn artifacts must not change any verdict"
        );
        let rows = |r: &MailroomReport| -> Vec<(Option<WireTag>, u64, u64, u64, u64)> {
            r.sessions
                .iter()
                .map(|s| (s.kind, s.emails, s.bytes_sent, s.bytes_received, s.messages))
                .collect()
        };
        assert_eq!(
            rows(&inline_report),
            rows(&bank_report),
            "wire accounting is independent of artifact provenance"
        );

        // The inline run never started a bank; the bank run surfaces its
        // reservoirs in the shutdown report.
        assert!(inline_report.reservoirs.is_empty());
        assert!(bank_report
            .reservoirs
            .iter()
            .any(|r| r.kind == KIND_GARBLINGS && r.produced > 0));
        assert!(
            bank_report.reservoir_depth(KIND_GARBLINGS) > 0,
            "prefilled garblings outnumber the two rounds drawn"
        );

        // The spam session's garblings were prefetched before it started:
        // every round drew from the bank, none fell back inline.
        let spam = bank_report
            .sessions
            .iter()
            .find(|s| s.kind == Some(SpamFunction::WIRE_TAG))
            .unwrap();
        assert_eq!(
            spam.fallback_draws, 0,
            "a full reservoir means zero inline garblings"
        );
        assert!(spam.pools.iter().any(|(kind, _)| *kind == KIND_GARBLINGS));
        assert_eq!(
            spam.reservoir_depth(KIND_GARBLINGS),
            0,
            "ready pool stays empty in bank mode"
        );
    }

    #[test]
    fn shutdown_refuses_new_submissions() {
        let mailroom = Mailroom::start(test_suite(), small_config(1, 4));
        let shared = Arc::clone(&mailroom.shared);
        let report = mailroom.shutdown();
        assert_eq!(report.sessions.len(), 0);
        // The queue is closed; a late submit must be refused cleanly.
        let mailroom = Mailroom {
            shared,
            workers: Vec::new(),
            bank: None,
        };
        let (provider_end, mut client_end) = memory_pair();
        assert!(matches!(
            mailroom.submit(provider_end),
            Err(ServerError::ShuttingDown)
        ));
        assert_eq!(client_end.recv().unwrap(), vec![ACK_BUSY]);
    }
}
