//! Provider **mailroom**: a multi-session serving layer over the Pretzel
//! protocols.
//!
//! The paper's provider serves millions of users, but the rest of this
//! workspace only drives one client/provider pair at a time through
//! [`pretzel_transport::run_two_party`]. This crate adds the missing serving
//! layer: a [`Mailroom`] accepts many concurrent client sessions over any
//! [`pretzel_transport::Channel`] (in-memory pairs for tests and benchmarks,
//! framed TCP via [`pretzel_transport::TcpAcceptor`] for real sockets), runs
//! each session through the spam / topic / virus / encrypted-search
//! protocols of [`pretzel_core`], and manages the whole lifecycle —
//! handshake, one-time setup whose state is reused across per-email rounds,
//! teardown.
//!
//! Architecture (see `docs/ARCHITECTURE.md` for the full layer diagram):
//!
//! * a **worker pool** of OS threads, each running complete sessions one at
//!   a time — sessions are independent, so throughput scales with workers
//!   until the machine runs out of cores;
//! * a **bounded intake queue** between the acceptor and the workers; a full
//!   queue *refuses* new sessions immediately ([`ACK_BUSY`]) instead of
//!   buffering without bound — backpressure, not memory growth;
//! * **per-session and fleet-wide accounting** via
//!   [`pretzel_transport::Meter`], keyed by [`SessionId`];
//! * **graceful shutdown**: [`Mailroom::shutdown`] drains queued and
//!   in-flight sessions, then reports.
//!
//! The matching client driver is [`MailroomClient`], used by
//! `examples/mailroom.rs`, the concurrency integration tests, and the
//! `throughput_mailroom` benchmark to spin up N simulated senders.
//!
//! # Wire protocol
//!
//! All framing below rides on the message-oriented [`Channel`] contract
//! (`u32` length-prefixed frames on TCP). The session handshake is
//! **versioned** (see `pretzel_transport::wire` and `docs/WIRE.md`): one
//! mailroom serves legacy v1 peers and capability-negotiating v2 peers on
//! the same intake, which is what makes a zero-downtime rolling upgrade of
//! the fleet possible.
//!
//! ```text
//! v1 (frozen, byte-identical to the pre-versioning format):
//! client → provider   [wire_tag, variant]        2-byte session request
//! provider → client   [ACK_ACCEPTED] | [ACK_BUSY]
//! …protocol setup (provider initiates; §3.3 joint randomness, model, OTs)…
//! repeat:
//!   client → provider [ROUND_EMAIL]              then one per-email round
//! client → provider   [ROUND_BYE]                teardown
//!
//! v2 (negotiated):
//! client → provider   HandshakeOffer             [0x00 'P' 'Z', min, max,
//!                                                 wire_tag, variant,
//!                                                 capabilities:u64le]
//! provider → client   [ACK_ACCEPTED] | [ACK_BUSY]
//! provider → client   HandshakeAck               picked version + granted
//!                                                capabilities (or refusal)
//! …all further frames through the negotiated codec (v2: header+CRC32)…
//! repeat:
//!   client → provider [ROUND_EMAIL]              one per-email round
//!   client → provider [ROUND_BATCH, n:u32le]     one n-round batch — only
//!                                                with the negotiated
//!                                                ROUND_BATCH capability
//! client → provider   [ROUND_BYE]                teardown
//! ```
//!
//! The `wire_tag` byte is resolved through the mailroom's
//! [`pretzel_core::ProtocolRegistry`] — the four built-in modules by
//! default, plus anything registered via [`Mailroom::start_with_registry`].
//! Batching is a *negotiated capability*: v2 clients that negotiated
//! [`Capabilities::ROUND_BATCH`] coalesce rounds, v1 clients (and v2
//! clients without the bit) are transparently served one round at a time —
//! [`MailroomClient::process_batch`] degrades to a sequential loop instead
//! of failing.
//!
//! [`Channel`]: pretzel_transport::Channel

#![warn(missing_docs)]

mod client;
mod mailroom;
mod queue;

pub use client::{ClientSpec, ClientSpecBuilder, MailroomClient};
pub use mailroom::{
    serve_tcp_sessions, KindTotals, Mailroom, MailroomConfig, MailroomConfigBuilder,
    MailroomReport, SessionId, SessionState, SessionStats,
};
pub use pretzel_core::bank::{BankConfig, BankReport, ReservoirStats};
pub use queue::{BoundedQueue, PushError};

use pretzel_core::PretzelError;
use pretzel_transport::wire::HandshakeError;
use pretzel_transport::TransportError;

// Negotiation vocabulary, re-exported so mailroom users can build specs and
// inspect reports without importing `pretzel_transport` themselves.
pub use pretzel_transport::wire::{
    Capabilities, HandshakeAck, HandshakeOffer, NegotiatedProfile, NegotiationPolicy,
    ProtocolVersion,
};

/// Ack byte: the session was accepted and queued for a worker.
pub const ACK_ACCEPTED: u8 = 0x41;
/// Ack byte: the mailroom is at capacity (or shutting down); retry later.
pub const ACK_BUSY: u8 = 0x42;
/// Control byte opening one per-email round.
pub const ROUND_EMAIL: u8 = 1;
/// Control byte opening one batched round: followed by a little-endian
/// `u32` round count in the same frame.
pub const ROUND_BATCH: u8 = 2;
/// Control byte ending a session.
pub const ROUND_BYE: u8 = 0;
/// Upper bound on the rounds one [`ROUND_BATCH`] frame may announce — a
/// sanity cap so a malicious count cannot size provider allocations.
pub const MAX_BATCH_ROUNDS: usize = 4096;

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServerError {
    /// The provider refused the session (mailroom at capacity).
    Busy,
    /// The mailroom is shutting down and no longer accepts sessions.
    ShuttingDown,
    /// Intake rejected this submission because the queue was full; the
    /// client was told [`ACK_BUSY`]. Carries the rejected session's id.
    Backpressure(SessionId),
    /// The handshake failed: malformed offer, no version overlap, unknown
    /// wire tag, or a required capability the peer refused. Structured so
    /// callers can distinguish "speak an older version" from "this function
    /// does not exist here".
    Handshake(HandshakeError),
    /// A round-control frame violated the negotiated session rules — a
    /// degenerate or oversized batch count, or a [`ROUND_BATCH`] frame on a
    /// session that never negotiated [`Capabilities::ROUND_BATCH`].
    Control(String),
    /// A protocol-layer failure inside a session.
    Pretzel(PretzelError),
    /// A transport failure outside any protocol (handshake I/O).
    Transport(TransportError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Busy => write!(f, "provider busy: session refused"),
            ServerError::ShuttingDown => write!(f, "mailroom is shutting down"),
            ServerError::Backpressure(id) => {
                write!(f, "intake queue full: session {id} rejected")
            }
            ServerError::Handshake(e) => write!(f, "handshake: {e}"),
            ServerError::Control(msg) => write!(f, "round control: {msg}"),
            ServerError::Pretzel(e) => write!(f, "protocol: {e}"),
            ServerError::Transport(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<PretzelError> for ServerError {
    fn from(e: PretzelError) -> Self {
        ServerError::Pretzel(e)
    }
}

impl From<TransportError> for ServerError {
    fn from(e: TransportError) -> Self {
        ServerError::Transport(e)
    }
}

impl From<HandshakeError> for ServerError {
    fn from(e: HandshakeError) -> Self {
        ServerError::Handshake(e)
    }
}
