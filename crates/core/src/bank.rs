//! Fleet-wide precompute bank with dependency-aware background production.
//!
//! Prior to the bank, every offline artifact pool (Paillier randomizers,
//! precomputed garblings, zero encryptions, base OTs) was per-session and
//! topped up *inline* between rounds by the serving worker — so warm-path
//! throughput dipped whenever a pool ran dry mid-burst at high session
//! counts. The bank promotes precompute to a fleet-wide service:
//!
//! * **Per-kind reservoirs.** Artifacts are stored in reservoirs keyed by
//!   [`ReservoirId`] — an artifact *kind* (one of [`KIND_RANDOMIZERS`],
//!   [`KIND_GARBLINGS`], [`KIND_ZERO_ENCRYPTIONS`], [`KIND_BASE_OTS`]) plus a
//!   64-bit *fingerprint* binding the reservoir to its parameters (circuit
//!   shape, public key, OT group). Key-independent artifacts (garbled tables,
//!   base-OT sender state) are shared by every session with the same shape;
//!   key-dependent artifacts (randomizers, zero encryptions) get one
//!   reservoir per registered session key.
//! * **Background producers.** [`PrecomputeBank::start`] spawns producer
//!   threads that keep reservoirs filled to their targets using idle cores,
//!   and park on a condvar once every reservoir is at its high watermark —
//!   they never spin against the serving path.
//! * **Dependency DAG.** Production is scheduled as a kind-level dependency
//!   DAG: a reservoir whose [`ReservoirSpec::depends_on`] kinds are below
//!   their low watermarks is not eligible, so key-independent artifacts are
//!   produced first and key-dependent ones only once the shared stock is
//!   healthy — the scheduling shape of a DAG-of-work executor.
//! * **Work-stealing draws.** Each reservoir is sharded; a drawing session
//!   starts at the shard hashed from its thread and steals from the other
//!   shards when its own is empty, so concurrent draws mostly avoid
//!   contending on one lock.
//! * **Inline fallback, counted.** [`PrecomputeSource::draw`] returns `None`
//!   when a reservoir is dry; callers fall back to producing inline and
//!   report it via [`PrecomputeSource::record_fallback`], making pool-dry
//!   events directly observable ([`BankReport`], `Meter` gauges).
//!
//! Consumption goes through the object-safe [`PrecomputeSource`] trait so
//! modules can be handed any source — the fleet bank, or a test double. The
//! old per-session `precompute(budget)` entry points remain as deprecated
//! shims over the session-local pools.

use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Kind name for pre-exponentiated Paillier randomizers (`r^n mod n²`) —
/// key-dependent.
pub const KIND_RANDOMIZERS: &str = "randomizers";
/// Kind name for precomputed garbled circuits — key-independent (bound to a
/// circuit fingerprint, shared by every session evaluating that circuit).
pub const KIND_GARBLINGS: &str = "garblings";
/// Kind name for Paillier zero encryptions used by search response padding —
/// key-dependent.
pub const KIND_ZERO_ENCRYPTIONS: &str = "zero_encryptions";
/// Kind name for Chou–Orlandi base-OT sender precomputation feeding the IKNP
/// extension — key-independent (bound to the OT group).
pub const KIND_BASE_OTS: &str = "base_ots";

/// The kind-level production DAG: key-dependent kinds wait for the shared
/// key-independent stock to reach its low watermark first.
pub const KEY_INDEPENDENT_KINDS: &[&str] = &[KIND_GARBLINGS, KIND_BASE_OTS];

/// FNV-1a over a byte string — the scheme used to derive reservoir
/// fingerprints from parameters (public-key bytes, group moduli, circuit
/// shapes). Stable across processes, cheap, and collision-safe at the scale
/// of a fleet's distinct parameter sets.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A type-erased precomputed artifact. Callers downcast to the concrete type
/// they registered the producer for.
pub type Artifact = Box<dyn Any + Send>;

/// A producer closure: given an RNG, manufactures one artifact. Runs on bank
/// producer threads, so it must be `Send + Sync` and self-contained.
pub type Producer = Arc<dyn Fn(&mut dyn RngCore) -> Artifact + Send + Sync>;

/// Identifies one reservoir: an artifact kind plus a parameter fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReservoirId {
    /// Artifact kind — one of the `KIND_*` constants (or a custom name for
    /// modules registered from outside the core crate).
    pub kind: &'static str,
    /// Binds the reservoir to its parameters (see [`fingerprint64`]).
    pub fingerprint: u64,
}

impl ReservoirId {
    /// A reservoir id for `kind` with parameter fingerprint `fingerprint`.
    pub fn new(kind: &'static str, fingerprint: u64) -> Self {
        ReservoirId { kind, fingerprint }
    }

    /// Garblings for the circuit with the given fingerprint.
    pub fn garblings(fingerprint: u64) -> Self {
        Self::new(KIND_GARBLINGS, fingerprint)
    }

    /// Randomizers for the Paillier key with the given fingerprint.
    pub fn randomizers(fingerprint: u64) -> Self {
        Self::new(KIND_RANDOMIZERS, fingerprint)
    }

    /// Zero encryptions for the Paillier key with the given fingerprint.
    pub fn zero_encryptions(fingerprint: u64) -> Self {
        Self::new(KIND_ZERO_ENCRYPTIONS, fingerprint)
    }

    /// Base-OT sender precomputation for the OT group with the given
    /// fingerprint.
    pub fn base_ots(fingerprint: u64) -> Self {
        Self::new(KIND_BASE_OTS, fingerprint)
    }
}

impl fmt::Display for ReservoirId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{:016x}", self.kind, self.fingerprint)
    }
}

/// Everything the bank needs to own a reservoir: identity, its place in the
/// kind-level dependency DAG, an optional target depth override, and the
/// producer closure.
#[derive(Clone)]
pub struct ReservoirSpec {
    /// Which reservoir this spec describes.
    pub id: ReservoirId,
    /// Kinds whose reservoirs must be at their low watermark before this
    /// reservoir becomes eligible for production (kind-level DAG edges).
    pub depends_on: &'static [&'static str],
    /// Target depth; `None` uses the bank's per-kind or default target.
    pub target: Option<usize>,
    /// Manufactures one artifact.
    pub producer: Producer,
}

impl ReservoirSpec {
    /// A spec with no dependencies and the bank's default target.
    pub fn new(id: ReservoirId, producer: Producer) -> Self {
        ReservoirSpec {
            id,
            depends_on: &[],
            target: None,
            producer,
        }
    }

    /// Declares kind-level dependencies (see [`ReservoirSpec::depends_on`]).
    pub fn after(mut self, kinds: &'static [&'static str]) -> Self {
        self.depends_on = kinds;
        self
    }

    /// Overrides the reservoir's target depth.
    pub fn with_target(mut self, target: usize) -> Self {
        self.target = Some(target);
        self
    }
}

impl fmt::Debug for ReservoirSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReservoirSpec")
            .field("id", &self.id)
            .field("depends_on", &self.depends_on)
            .field("target", &self.target)
            .finish_non_exhaustive()
    }
}

/// Object-safe handle through which sessions consume precomputed artifacts.
///
/// This is the redesigned consumption API: modules are handed an
/// `Arc<dyn PrecomputeSource>` (the fleet bank, or a test double), register
/// the reservoirs they need, and draw per round with an inline fallback when
/// a draw returns `None`.
pub trait PrecomputeSource: Send + Sync {
    /// Registers (or re-registers) a reservoir. Registration is refcounted:
    /// a second registration of the same id shares the reservoir and raises
    /// its target to the maximum requested.
    fn register(&self, spec: ReservoirSpec);

    /// Drops one registration of `id`; the last release retires the
    /// reservoir (its remaining stock is drained into the final report).
    fn release(&self, id: &ReservoirId);

    /// Draws one artifact, stealing across shards; `None` when dry (caller
    /// falls back inline and should call
    /// [`record_fallback`](PrecomputeSource::record_fallback)).
    fn draw(&self, id: &ReservoirId) -> Option<Artifact>;

    /// Current depth of `id`'s reservoir (0 if unregistered).
    fn depth(&self, id: &ReservoirId) -> usize;

    /// Records that a draw came up dry and the caller produced inline.
    fn record_fallback(&self, id: &ReservoirId);
}

/// Per-kind observability snapshot of a module's *local* pool (the
/// session-local stock modules keep in front of the bank), reported through
/// `ProviderModule::pool_stats` into the mailroom's per-session meters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Artifact kind (`KIND_*` naming scheme, shared with [`ReservoirId`]).
    pub kind: &'static str,
    /// Artifacts currently held locally by the module.
    pub depth: u64,
    /// Draws that found both the local pool and the bank dry and fell back
    /// to inline production.
    pub fallback_draws: u64,
}

/// Bank tuning: producer threads, targets, and backpressure watermarks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BankConfig {
    /// Background producer threads (each with its own seeded RNG).
    pub producer_threads: usize,
    /// Target depth for reservoirs without an explicit target.
    pub default_target: usize,
    /// Per-kind target overrides, consulted before `default_target`.
    pub targets: Vec<(&'static str, usize)>,
    /// Percentage of target below which producers are woken and dependent
    /// kinds are considered starved (backpressure low watermark).
    pub low_watermark_pct: u32,
    /// Percentage of target at which production for a reservoir stops
    /// (backpressure high watermark); producers park when every reservoir is
    /// at its high watermark.
    pub high_watermark_pct: u32,
    /// Seed for the producer threads' RNGs.
    pub rng_seed: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            producer_threads: 1,
            default_target: 32,
            targets: Vec::new(),
            low_watermark_pct: 25,
            high_watermark_pct: 100,
            rng_seed: 0x4241_4e4b_5052_4543, // "BANKPREC"
        }
    }
}

impl BankConfig {
    /// Sets the number of producer threads.
    pub fn producer_threads(mut self, n: usize) -> Self {
        self.producer_threads = n.max(1);
        self
    }

    /// Sets the default reservoir target depth.
    pub fn default_target(mut self, n: usize) -> Self {
        self.default_target = n;
        self
    }

    /// Overrides the target depth for one artifact kind.
    pub fn target(mut self, kind: &'static str, n: usize) -> Self {
        self.targets.retain(|(k, _)| *k != kind);
        self.targets.push((kind, n));
        self
    }

    /// Sets the backpressure watermarks as percentages of target.
    pub fn watermarks(mut self, low_pct: u32, high_pct: u32) -> Self {
        self.low_watermark_pct = low_pct.min(high_pct);
        self.high_watermark_pct = high_pct.max(1);
        self
    }

    /// Seeds the producer RNGs.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    fn kind_target(&self, kind: &str) -> usize {
        self.targets
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, t)| *t)
            .unwrap_or(self.default_target)
    }
}

/// Shards per reservoir: enough to spread concurrent draws, small enough
/// that stealing scans stay cheap.
const SHARDS: usize = 4;

struct Reservoir {
    kind: &'static str,
    fingerprint: u64,
    depends_on: &'static [&'static str],
    target: AtomicUsize,
    /// Hysteresis arm: producers fill this reservoir only while set. Armed
    /// on registration (and re-registration), cleared once the stock
    /// reaches the high watermark, re-armed when a draw dips it below the
    /// low watermark — so a reservoir drained partway between the
    /// watermarks costs no production CPU.
    producing: AtomicBool,
    shards: Vec<Mutex<VecDeque<Artifact>>>,
    depth: AtomicUsize,
    in_flight: AtomicUsize,
    produced: AtomicU64,
    drawn: AtomicU64,
    fallback_draws: AtomicU64,
    refs: AtomicUsize,
    producer: Producer,
}

impl Reservoir {
    fn from_spec(spec: &ReservoirSpec, cfg: &BankConfig) -> Self {
        let target = spec.target.unwrap_or_else(|| cfg.kind_target(spec.id.kind));
        Reservoir {
            kind: spec.id.kind,
            fingerprint: spec.id.fingerprint,
            depends_on: spec.depends_on,
            target: AtomicUsize::new(target),
            producing: AtomicBool::new(true),
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            produced: AtomicU64::new(0),
            drawn: AtomicU64::new(0),
            fallback_draws: AtomicU64::new(0),
            refs: AtomicUsize::new(1),
            producer: Arc::clone(&spec.producer),
        }
    }

    fn high_target(&self, cfg: &BankConfig) -> usize {
        let t = self.target.load(Ordering::Relaxed);
        (t * cfg.high_watermark_pct as usize).div_ceil(100)
    }

    fn low_target(&self, cfg: &BankConfig) -> usize {
        let t = self.target.load(Ordering::Relaxed);
        t * cfg.low_watermark_pct as usize / 100
    }

    fn stats(&self) -> ReservoirStats {
        ReservoirStats {
            kind: self.kind,
            fingerprint: self.fingerprint,
            target: self.target.load(Ordering::Relaxed),
            depth: self.depth.load(Ordering::Relaxed) as u64,
            produced: self.produced.load(Ordering::Relaxed),
            drawn: self.drawn.load(Ordering::Relaxed),
            fallback_draws: self.fallback_draws.load(Ordering::Relaxed),
        }
    }
}

struct BankInner {
    cfg: BankConfig,
    reservoirs: Mutex<BTreeMap<ReservoirId, Arc<Reservoir>>>,
    /// Reservoirs retired by their last `release`, kept for the final report.
    retired: Mutex<Vec<ReservoirStats>>,
    /// Fallbacks recorded against ids that were never registered.
    orphan_fallbacks: Mutex<BTreeMap<ReservoirId, u64>>,
    work: Condvar,
    work_lock: Mutex<()>,
    shutdown: AtomicBool,
}

impl BankInner {
    fn wake(&self) {
        let _guard = self.work_lock.lock().unwrap();
        self.work.notify_all();
    }

    fn deps_ready(
        map: &BTreeMap<ReservoirId, Arc<Reservoir>>,
        res: &Reservoir,
        cfg: &BankConfig,
    ) -> bool {
        res.depends_on.iter().all(|dep| {
            map.values()
                .filter(|r| r.kind == *dep)
                .all(|r| r.depth.load(Ordering::Relaxed) >= r.low_target(cfg))
        })
    }

    /// Picks the eligible reservoir with the largest relative deficit and
    /// reserves one production slot on it (`in_flight`), so concurrent
    /// producers never overshoot a target.
    fn pick_work(&self) -> Option<Arc<Reservoir>> {
        let map = self.reservoirs.lock().unwrap();
        let mut best: Option<(usize, &Arc<Reservoir>)> = None;
        for res in map.values() {
            let high = res.high_target(&self.cfg);
            let filled = res.depth.load(Ordering::Relaxed) + res.in_flight.load(Ordering::Relaxed);
            if filled >= high {
                res.producing.store(false, Ordering::Relaxed);
                continue;
            }
            if !res.producing.load(Ordering::Relaxed) || !Self::deps_ready(&map, res, &self.cfg) {
                continue;
            }
            let deficit_pm = (high - filled) * 1000 / high.max(1);
            if best.is_none_or(|(b, _)| deficit_pm > b) {
                best = Some((deficit_pm, res));
            }
        }
        best.map(|(_, res)| {
            res.in_flight.fetch_add(1, Ordering::AcqRel);
            Arc::clone(res)
        })
    }

    fn get(&self, id: &ReservoirId) -> Option<Arc<Reservoir>> {
        self.reservoirs.lock().unwrap().get(id).cloned()
    }
}

fn shard_hint() -> usize {
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish() as usize % SHARDS
}

/// Cloneable, object-safe handle onto a running [`PrecomputeBank`] — the
/// concrete [`PrecomputeSource`] sessions are handed.
#[derive(Clone)]
pub struct BankHandle {
    inner: Arc<BankInner>,
}

impl PrecomputeSource for BankHandle {
    fn register(&self, spec: ReservoirSpec) {
        {
            let mut map = self.inner.reservoirs.lock().unwrap();
            match map.get(&spec.id) {
                Some(res) => {
                    res.refs.fetch_add(1, Ordering::AcqRel);
                    let target = spec
                        .target
                        .unwrap_or_else(|| self.inner.cfg.kind_target(spec.id.kind));
                    res.target.fetch_max(target, Ordering::AcqRel);
                    // Re-arm: a raised target may have reopened a deficit
                    // (a no-op arm is cleared on the next producer scan).
                    res.producing.store(true, Ordering::Relaxed);
                }
                None => {
                    map.insert(
                        spec.id,
                        Arc::new(Reservoir::from_spec(&spec, &self.inner.cfg)),
                    );
                }
            }
        }
        self.inner.wake();
    }

    fn release(&self, id: &ReservoirId) {
        let mut map = self.inner.reservoirs.lock().unwrap();
        if let Some(res) = map.get(id) {
            if res.refs.fetch_sub(1, Ordering::AcqRel) == 1 {
                let res = map.remove(id).expect("reservoir present");
                self.inner.retired.lock().unwrap().push(res.stats());
            }
        }
    }

    fn draw(&self, id: &ReservoirId) -> Option<Artifact> {
        let res = self.inner.get(id)?;
        let start = shard_hint();
        for k in 0..SHARDS {
            let artifact = res.shards[(start + k) % SHARDS].lock().unwrap().pop_front();
            if let Some(artifact) = artifact {
                res.depth.fetch_sub(1, Ordering::AcqRel);
                res.drawn.fetch_add(1, Ordering::Relaxed);
                if res.depth.load(Ordering::Relaxed) < res.low_target(&self.inner.cfg) {
                    res.producing.store(true, Ordering::Relaxed);
                    self.inner.wake();
                }
                return Some(artifact);
            }
        }
        None
    }

    fn depth(&self, id: &ReservoirId) -> usize {
        self.inner
            .get(id)
            .map_or(0, |res| res.depth.load(Ordering::Relaxed))
    }

    fn record_fallback(&self, id: &ReservoirId) {
        match self.inner.get(id) {
            Some(res) => {
                res.fallback_draws.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                *self
                    .inner
                    .orphan_fallbacks
                    .lock()
                    .unwrap()
                    .entry(*id)
                    .or_insert(0) += 1;
            }
        }
    }
}

/// Final (or snapshot) accounting for one reservoir.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReservoirStats {
    /// Artifact kind.
    pub kind: &'static str,
    /// Parameter fingerprint.
    pub fingerprint: u64,
    /// Target depth at the time of the snapshot.
    pub target: usize,
    /// Artifacts currently stocked.
    pub depth: u64,
    /// Artifacts manufactured by producer threads.
    pub produced: u64,
    /// Artifacts handed out to sessions.
    pub drawn: u64,
    /// Draws that found the reservoir dry.
    pub fallback_draws: u64,
}

/// Per-kind accounting across every reservoir the bank has owned, returned
/// by [`PrecomputeBank::report`] and [`PrecomputeBank::shutdown`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BankReport {
    /// One row per reservoir (live and retired), sorted by id.
    pub reservoirs: Vec<ReservoirStats>,
}

impl BankReport {
    /// Total stocked depth across every reservoir of `kind`.
    pub fn depth_by_kind(&self, kind: &str) -> u64 {
        self.reservoirs
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.depth)
            .sum()
    }

    /// Total dry draws across every reservoir of `kind`.
    pub fn fallbacks_by_kind(&self, kind: &str) -> u64 {
        self.reservoirs
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.fallback_draws)
            .sum()
    }

    /// Total artifacts manufactured by producer threads.
    pub fn produced_total(&self) -> u64 {
        self.reservoirs.iter().map(|r| r.produced).sum()
    }

    /// Total artifacts handed out to sessions.
    pub fn drawn_total(&self) -> u64 {
        self.reservoirs.iter().map(|r| r.drawn).sum()
    }
}

/// The running bank: owns the producer threads; hand out draw handles with
/// [`PrecomputeBank::handle`].
pub struct PrecomputeBank {
    inner: Arc<BankInner>,
    producers: Mutex<Vec<JoinHandle<()>>>,
}

impl PrecomputeBank {
    /// Starts the bank: spawns `cfg.producer_threads` background producers
    /// (each parked until a reservoir is registered).
    pub fn start(cfg: BankConfig) -> Self {
        let threads = cfg.producer_threads.max(1);
        let inner = Arc::new(BankInner {
            cfg,
            reservoirs: Mutex::new(BTreeMap::new()),
            retired: Mutex::new(Vec::new()),
            orphan_fallbacks: Mutex::new(BTreeMap::new()),
            work: Condvar::new(),
            work_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
        });
        let producers = (0..threads)
            .map(|idx| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("bank-producer-{idx}"))
                    .spawn(move || producer_loop(inner, idx))
                    .expect("spawn bank producer")
            })
            .collect();
        PrecomputeBank {
            inner,
            producers: Mutex::new(producers),
        }
    }

    /// A cloneable draw handle implementing [`PrecomputeSource`].
    pub fn handle(&self) -> Arc<dyn PrecomputeSource> {
        Arc::new(BankHandle {
            inner: Arc::clone(&self.inner),
        })
    }

    /// Registers a reservoir (see [`PrecomputeSource::register`]).
    pub fn register(&self, spec: ReservoirSpec) {
        BankHandle {
            inner: Arc::clone(&self.inner),
        }
        .register(spec);
    }

    /// Blocks until every registered reservoir is at its high watermark, or
    /// the timeout elapses. Returns whether the bank filled in time. Used to
    /// pre-stock reservoirs during untimed setup (benches, scenario starts)
    /// so the serving phase never waits on production.
    pub fn wait_until_full(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let full = {
                let map = self.inner.reservoirs.lock().unwrap();
                map.values().all(|res| {
                    res.depth.load(Ordering::Relaxed) >= res.high_target(&self.inner.cfg)
                })
            };
            if full {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Snapshot of every reservoir the bank has owned (live and retired),
    /// plus fallbacks recorded against never-registered ids.
    pub fn report(&self) -> BankReport {
        let mut rows: Vec<ReservoirStats> = {
            let map = self.inner.reservoirs.lock().unwrap();
            map.values().map(|res| res.stats()).collect()
        };
        rows.extend(self.inner.retired.lock().unwrap().iter().copied());
        for (id, count) in self.inner.orphan_fallbacks.lock().unwrap().iter() {
            rows.push(ReservoirStats {
                kind: id.kind,
                fingerprint: id.fingerprint,
                target: 0,
                depth: 0,
                produced: 0,
                drawn: 0,
                fallback_draws: *count,
            });
        }
        rows.sort_by(|a, b| (a.kind, a.fingerprint).cmp(&(b.kind, b.fingerprint)));
        BankReport { reservoirs: rows }
    }

    /// Stops the producers, joins them, and returns the final per-reservoir
    /// accounting (remaining stock is reported as drained depth).
    pub fn shutdown(&self) -> BankReport {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake();
        for handle in self.producers.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        self.report()
    }
}

impl Drop for PrecomputeBank {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake();
        for handle in self.producers.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

fn producer_loop(inner: Arc<BankInner>, idx: usize) {
    let mut rng = StdRng::seed_from_u64(
        inner.cfg.rng_seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut shard = idx;
    while !inner.shutdown.load(Ordering::Acquire) {
        match inner.pick_work() {
            Some(res) => {
                let artifact = (res.producer)(&mut rng);
                res.shards[shard % SHARDS]
                    .lock()
                    .unwrap()
                    .push_back(artifact);
                res.depth.fetch_add(1, Ordering::AcqRel);
                res.in_flight.fetch_sub(1, Ordering::AcqRel);
                res.produced.fetch_add(1, Ordering::Relaxed);
                shard = shard.wrapping_add(1);
            }
            None => {
                // Park until a draw dips a reservoir below its low watermark
                // or a registration arrives; the timeout bounds the window of
                // a wake lost between `pick_work` and this wait.
                let guard = inner.work_lock.lock().unwrap();
                if inner.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let _ = inner
                    .work
                    .wait_timeout(guard, Duration::from_millis(5))
                    .unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_producer(counter: Arc<AtomicU64>) -> Producer {
        Arc::new(move |_rng: &mut dyn RngCore| {
            Box::new(counter.fetch_add(1, Ordering::SeqCst)) as Artifact
        })
    }

    #[test]
    fn producers_fill_to_target_then_park_without_overshoot() {
        let bank = PrecomputeBank::start(BankConfig::default().producer_threads(2));
        let counter = Arc::new(AtomicU64::new(0));
        let id = ReservoirId::garblings(7);
        bank.register(ReservoirSpec::new(id, counting_producer(counter.clone())).with_target(8));
        assert!(bank.wait_until_full(Duration::from_secs(10)));
        // Give producers a chance to (incorrectly) overshoot.
        std::thread::sleep(Duration::from_millis(20));
        let report = bank.shutdown();
        assert_eq!(report.depth_by_kind(KIND_GARBLINGS), 8);
        assert_eq!(
            counter.load(Ordering::SeqCst),
            8,
            "no overshoot past target"
        );
    }

    /// The backpressure hysteresis: a reservoir drained partway between the
    /// watermarks costs no production CPU; only dipping below the low
    /// watermark re-arms the producers (who then refill to the high one).
    #[test]
    fn draws_above_the_low_watermark_do_not_restart_production() {
        let bank = PrecomputeBank::start(
            BankConfig::default()
                .producer_threads(1)
                .watermarks(25, 100),
        );
        let counter = Arc::new(AtomicU64::new(0));
        let id = ReservoirId::garblings(5);
        bank.register(ReservoirSpec::new(id, counting_producer(counter.clone())).with_target(8));
        assert!(bank.wait_until_full(Duration::from_secs(10)));

        let handle = bank.handle();
        for _ in 0..4 {
            assert!(handle.draw(&id).is_some());
        }
        // Depth 4 is above the low watermark (2); even across several
        // producer timeout wakes, nothing is refilled.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(
            counter.load(Ordering::SeqCst),
            8,
            "no refill above the low watermark"
        );

        for _ in 0..3 {
            assert!(handle.draw(&id).is_some());
        }
        // Depth 1 dipped below the low watermark: production re-arms and
        // tops the reservoir back up to the high watermark.
        assert!(bank.wait_until_full(Duration::from_secs(10)));
        assert_eq!(counter.load(Ordering::SeqCst), 15);
        bank.shutdown();
    }

    #[test]
    fn dependency_dag_produces_key_independent_kinds_first() {
        // One producer thread so the production order is observable.
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let recorder = |tag: &'static str, order: Arc<Mutex<Vec<&'static str>>>| -> Producer {
            Arc::new(move |_rng: &mut dyn RngCore| {
                order.lock().unwrap().push(tag);
                Box::new(0u8) as Artifact
            })
        };
        let bank = PrecomputeBank::start(BankConfig::default().producer_threads(1));
        // Register the dependent kind FIRST so only the DAG can explain the
        // production order.
        bank.register(
            ReservoirSpec::new(
                ReservoirId::randomizers(1),
                recorder(KIND_RANDOMIZERS, order.clone()),
            )
            .after(KEY_INDEPENDENT_KINDS)
            .with_target(4),
        );
        bank.register(
            ReservoirSpec::new(
                ReservoirId::garblings(1),
                recorder(KIND_GARBLINGS, order.clone()),
            )
            .with_target(4),
        );
        assert!(bank.wait_until_full(Duration::from_secs(10)));
        bank.shutdown();
        let order = order.lock().unwrap();
        let first_randomizer = order
            .iter()
            .position(|k| *k == KIND_RANDOMIZERS)
            .expect("randomizers were produced");
        let garblings_before = order[..first_randomizer]
            .iter()
            .filter(|k| **k == KIND_GARBLINGS)
            .count();
        // Low watermark of the 4-deep garbling reservoir is 1: at least one
        // garbling must exist before any randomizer is manufactured.
        assert!(
            garblings_before >= 1,
            "key-dependent production started before the shared stock: {order:?}"
        );
    }

    #[test]
    fn sixty_four_threads_draining_one_reservoir_lose_and_duplicate_nothing() {
        let bank = PrecomputeBank::start(
            BankConfig::default()
                .producer_threads(2)
                .watermarks(50, 100),
        );
        let counter = Arc::new(AtomicU64::new(0));
        let id = ReservoirId::zero_encryptions(9);
        bank.register(ReservoirSpec::new(id, counting_producer(counter.clone())).with_target(64));

        const THREADS: usize = 64;
        const DRAWS_EACH: usize = 8;
        let handle = bank.handle();
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let source = Arc::clone(&handle);
                std::thread::spawn(move || {
                    let mut got = Vec::with_capacity(DRAWS_EACH);
                    while got.len() < DRAWS_EACH {
                        match source.draw(&id) {
                            Some(artifact) => {
                                got.push(*artifact.downcast::<u64>().expect("u64 artifact"))
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for worker in workers {
            for seq in worker.join().expect("drawer thread") {
                assert!(seen.insert(seq), "artifact {seq} handed out twice");
            }
        }
        assert_eq!(seen.len(), THREADS * DRAWS_EACH);

        let report = bank.shutdown();
        let row = &report.reservoirs[0];
        assert_eq!(row.drawn, (THREADS * DRAWS_EACH) as u64);
        assert_eq!(
            row.produced,
            row.drawn + row.depth,
            "every produced artifact is either stocked or handed out exactly once"
        );
        assert_eq!(row.fallback_draws, 0);
    }

    #[test]
    fn dry_draws_fall_back_and_are_counted_even_for_unknown_reservoirs() {
        let bank = PrecomputeBank::start(BankConfig::default());
        let handle = bank.handle();
        let unknown = ReservoirId::randomizers(0xdead);
        assert!(handle.draw(&unknown).is_none());
        assert_eq!(handle.depth(&unknown), 0);
        handle.record_fallback(&unknown);
        handle.record_fallback(&unknown);
        let report = bank.shutdown();
        assert_eq!(report.fallbacks_by_kind(KIND_RANDOMIZERS), 2);
    }

    #[test]
    fn release_retires_a_reservoir_but_keeps_its_accounting() {
        let bank = PrecomputeBank::start(BankConfig::default());
        let counter = Arc::new(AtomicU64::new(0));
        let id = ReservoirId::garblings(3);
        let spec = ReservoirSpec::new(id, counting_producer(counter)).with_target(2);
        let handle = bank.handle();
        handle.register(spec.clone());
        handle.register(spec); // second registration shares the reservoir
        assert!(bank.wait_until_full(Duration::from_secs(10)));
        let drawn = handle.draw(&id).expect("stocked");
        assert!(drawn.downcast::<u64>().is_ok());
        handle.release(&id);
        assert!(handle.draw(&id).is_some(), "still live after one release");
        handle.release(&id);
        assert!(handle.draw(&id).is_none(), "retired after last release");
        let report = bank.shutdown();
        assert_eq!(report.reservoirs.len(), 1, "retired row kept: {report:?}");
        assert_eq!(report.reservoirs[0].drawn, 2);
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        assert_eq!(fingerprint64(b"pretzel"), fingerprint64(b"pretzel"));
        assert_ne!(fingerprint64(b"pretzel"), fingerprint64(b"pretze1"));
        assert_eq!(fingerprint64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
