//! Uniform, session-reusable entry points over the three function modules.
//!
//! The spam, topic and virus modules each expose a `setup` / per-email pair
//! with module-specific types. A serving layer that multiplexes many client
//! sessions (see the `pretzel_server` mailroom) needs one dispatchable shape
//! instead: a [`ProtocolKind`] tag that travels in the session handshake, a
//! [`ProviderSession`] the provider can drive round by round, and a matching
//! [`ClientSession`] for the sending side. Both wrap the existing protocol
//! endpoints without changing a byte of the wire format — a
//! `ProviderSession::Spam` speaks exactly the protocol a bare
//! [`SpamProvider`] speaks.
//!
//! The lifecycle both enums model is the one §3.3/§4 prescribe: one
//! **setup** phase per (client, provider) pair — joint randomness, encrypted
//! model transfer, base OTs — whose state is then **reused** across an
//! arbitrary number of cheap per-email rounds. Between setup and the rounds
//! sits an optional **offline phase**: `precompute(budget)` fills
//! per-session pools (pre-garbled circuits, pre-exponentiated Paillier
//! randomizers) that `process_round` drains, falling back to inline
//! computation whenever a pool runs dry. Pool depth therefore only moves
//! work off the latency path — verdicts and wire sizes are identical at any
//! budget, which `tests/phase_split.rs` pins.

use rand::Rng;

use pretzel_classifiers::{LinearModel, NGramExtractor, SparseVector};
use pretzel_sse::DocId;
use pretzel_transport::Channel;

use crate::config::PretzelConfig;
use crate::search::{SearchClient, SearchProvider};
use crate::spam::{AheVariant, SpamClient, SpamProvider};
use crate::topic::{CandidateMode, TopicClient, TopicProvider};
use crate::virus::{VirusScanClient, VirusScanProvider};
use crate::{PretzelError, Result};

/// Which function module a session runs — the first byte of a mailroom
/// handshake.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Private spam filtering ([`crate::spam`]); the client learns the bit.
    Spam,
    /// Private topic extraction ([`crate::topic`]); the provider learns the
    /// topic index.
    Topic,
    /// Private virus scanning ([`crate::virus`]); the client learns the bit.
    Virus,
    /// Encrypted keyword search ([`crate::search`]); the client learns the
    /// matching document ids.
    Search,
}

impl ProtocolKind {
    /// Every kind, in wire-byte order (for per-kind reporting loops).
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::Spam,
        ProtocolKind::Topic,
        ProtocolKind::Virus,
        ProtocolKind::Search,
    ];

    /// Wire encoding used in session handshakes.
    pub fn as_byte(self) -> u8 {
        match self {
            ProtocolKind::Spam => 1,
            ProtocolKind::Topic => 2,
            ProtocolKind::Virus => 3,
            ProtocolKind::Search => 4,
        }
    }

    /// Decodes a handshake byte.
    pub fn from_byte(b: u8) -> Result<Self> {
        match b {
            1 => Ok(ProtocolKind::Spam),
            2 => Ok(ProtocolKind::Topic),
            3 => Ok(ProtocolKind::Virus),
            4 => Ok(ProtocolKind::Search),
            other => Err(PretzelError::Protocol(format!(
                "unknown protocol kind byte {other}"
            ))),
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolKind::Spam => write!(f, "spam"),
            ProtocolKind::Topic => write!(f, "topic"),
            ProtocolKind::Virus => write!(f, "virus"),
            ProtocolKind::Search => write!(f, "search"),
        }
    }
}

/// Wire encoding of an [`AheVariant`] for session handshakes.
pub fn variant_byte(variant: AheVariant) -> u8 {
    match variant {
        AheVariant::Pretzel => 1,
        AheVariant::Baseline => 2,
        AheVariant::PretzelNoOptimPack => 3,
    }
}

/// Decodes an [`AheVariant`] handshake byte.
pub fn variant_from_byte(b: u8) -> Result<AheVariant> {
    match b {
        1 => Ok(AheVariant::Pretzel),
        2 => Ok(AheVariant::Baseline),
        3 => Ok(AheVariant::PretzelNoOptimPack),
        other => Err(PretzelError::Protocol(format!(
            "unknown AHE variant byte {other}"
        ))),
    }
}

/// Everything a provider needs to serve any [`ProtocolKind`]: one trained
/// model per function module plus the shared parameter preset.
///
/// The suite is immutable once built, so a serving layer can share one
/// instance across all of its worker threads.
#[derive(Clone, Debug)]
pub struct ProviderModelSuite {
    /// Two-class spam model (class 1 = spam).
    pub spam: LinearModel,
    /// B-class topic model.
    pub topic: LinearModel,
    /// Candidate pruning mode used by topic sessions (must match the
    /// clients' configuration — it fixes the argmax circuit shape).
    pub topic_mode: CandidateMode,
    /// Two-class attachment model (class 1 = malicious).
    pub virus: LinearModel,
    /// Feature space of the virus model (public parameters, §2.1).
    pub virus_extractor: NGramExtractor,
    /// Protocol parameter preset shared by every session.
    pub config: PretzelConfig,
}

/// Provider endpoint of one live session, dispatchable over [`ProtocolKind`].
pub enum ProviderSession {
    /// A spam-filtering session.
    Spam(SpamProvider),
    /// A topic-extraction session.
    Topic(TopicProvider),
    /// A virus-scanning session.
    Virus(VirusScanProvider),
    /// An encrypted-keyword-search session. Needs no trained model — only the
    /// suite's parameter preset; the AHE variant byte is accepted but
    /// ignored (search always runs over RLWE).
    Search(SearchProvider),
}

impl ProviderSession {
    /// Runs the setup phase for `kind` against the peer on `channel`,
    /// returning reusable per-session state.
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        kind: ProtocolKind,
        channel: &mut C,
        suite: &ProviderModelSuite,
        variant: AheVariant,
        rng: &mut R,
    ) -> Result<Self> {
        match kind {
            ProtocolKind::Spam => Ok(ProviderSession::Spam(SpamProvider::setup(
                channel,
                &suite.spam,
                &suite.config,
                variant,
                rng,
            )?)),
            ProtocolKind::Topic => Ok(ProviderSession::Topic(TopicProvider::setup(
                channel,
                &suite.topic,
                &suite.config,
                variant,
                suite.topic_mode,
                rng,
            )?)),
            ProtocolKind::Virus => Ok(ProviderSession::Virus(VirusScanProvider::setup(
                channel,
                &suite.virus,
                suite.virus_extractor,
                &suite.config,
                variant,
                rng,
            )?)),
            ProtocolKind::Search => Ok(ProviderSession::Search(SearchProvider::setup(
                channel,
                &suite.config,
                rng,
            )?)),
        }
    }

    /// Which function module this session runs.
    pub fn kind(&self) -> ProtocolKind {
        match self {
            ProviderSession::Spam(_) => ProtocolKind::Spam,
            ProviderSession::Topic(_) => ProtocolKind::Topic,
            ProviderSession::Virus(_) => ProtocolKind::Virus,
            ProviderSession::Search(_) => ProtocolKind::Search,
        }
    }

    /// Offline phase: tops this session's precomputation pools up to
    /// `budget` future rounds, returning the number of work units produced
    /// (0 when the session kind has no provider-side offline work, e.g.
    /// topic sessions where the client garbles).
    pub fn precompute<R: Rng + ?Sized>(&mut self, budget: usize, rng: &mut R) -> usize {
        match self {
            ProviderSession::Spam(p) => p.precompute(budget, rng),
            ProviderSession::Topic(p) => p.precompute(budget, rng),
            ProviderSession::Virus(p) => p.precompute(budget, rng),
            ProviderSession::Search(p) => p.precompute(budget, rng),
        }
    }

    /// Rounds the offline pools can currently serve without inline work.
    pub fn pool_depth(&self) -> usize {
        match self {
            ProviderSession::Spam(p) => p.pool_depth(),
            ProviderSession::Topic(p) => p.pool_depth(),
            ProviderSession::Virus(p) => p.pool_depth(),
            ProviderSession::Search(p) => p.pool_depth(),
        }
    }

    /// Runs one per-email round. Returns the topic index for topic sessions
    /// (the only module whose output goes to the provider, Guarantee 3) and
    /// `None` for spam/virus/search sessions (spam and virus reveal nothing
    /// to the provider; a search round only reveals the standard SSE leakage,
    /// which is not a per-round output).
    ///
    /// Draws from the pools filled by [`ProviderSession::precompute`] when
    /// they are non-empty and computes inline otherwise.
    pub fn process_round<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        rng: &mut R,
    ) -> Result<Option<usize>> {
        match self {
            ProviderSession::Spam(p) => {
                p.process_email(channel, rng)?;
                Ok(None)
            }
            ProviderSession::Topic(p) => Ok(Some(p.process_email(channel)?)),
            ProviderSession::Virus(p) => {
                p.process_attachment(channel, rng)?;
                Ok(None)
            }
            ProviderSession::Search(p) => {
                p.process_round(channel, rng)?;
                Ok(None)
            }
        }
    }
}

/// One round's input as submitted to a client session: token counts for
/// spam/topic, raw bytes for virus scanning (the provider's extractor hashes
/// them), and index/query operations for search sessions.
#[derive(Clone, Debug)]
pub enum EmailPayload {
    /// Sparse token counts over the model's feature space.
    Tokens(SparseVector),
    /// Raw attachment bytes.
    Attachment(Vec<u8>),
    /// Search session: index one email body under a stable document id.
    SearchIndex {
        /// Stable identifier the matching queries will return.
        doc_id: DocId,
        /// Decrypted email body to tokenize and index.
        body: String,
    },
    /// Search session: single-keyword query.
    SearchQuery(String),
}

/// What the client learned from one per-email round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Spam session: the one-bit verdict (Guarantee 2).
    Spam {
        /// `true` when the email was classified as spam.
        is_spam: bool,
    },
    /// Topic session: the candidate set the client submitted (the verdict
    /// itself — the chosen index — goes to the provider, Guarantee 3).
    Topic {
        /// Candidate topic indices submitted for the secure argmax.
        candidates: Vec<usize>,
    },
    /// Virus session: the one-bit verdict.
    Virus {
        /// `true` when the attachment was classified as malicious.
        is_malicious: bool,
    },
    /// Search session, index round: the upload was stored.
    SearchIndexed {
        /// Encrypted postings the round added to the provider's index.
        postings: usize,
    },
    /// Search session, query round: the matching document ids.
    SearchHits {
        /// Ids of the returned matching emails (at most one response's
        /// capacity).
        ids: Vec<DocId>,
        /// Total matches at the provider; `total > ids.len()` means the
        /// result set was truncated to the per-response capacity.
        total: u64,
    },
}

/// Client endpoint of one live session, mirroring [`ProviderSession`].
pub enum ClientSession {
    /// A spam-filtering session.
    Spam(SpamClient),
    /// A topic-extraction session (boxed: the client-side garbling pool
    /// makes this variant much larger than its siblings).
    Topic(Box<TopicClient>),
    /// A virus-scanning session.
    Virus(VirusScanClient),
    /// An encrypted-keyword-search session.
    Search(SearchClient),
}

impl ClientSession {
    /// Runs the setup phase for `kind` against the provider on `channel`.
    ///
    /// `topic_mode` and `candidate_model` only matter for topic sessions;
    /// the mode must match the provider's [`ProviderModelSuite::topic_mode`]
    /// (it fixes the garbled-circuit shape) and a candidate model is required
    /// when the mode is [`CandidateMode::Decomposed`].
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        kind: ProtocolKind,
        channel: &mut C,
        config: &PretzelConfig,
        variant: AheVariant,
        topic_mode: CandidateMode,
        candidate_model: Option<LinearModel>,
        rng: &mut R,
    ) -> Result<Self> {
        match kind {
            ProtocolKind::Spam => Ok(ClientSession::Spam(SpamClient::setup(
                channel, config, variant, rng,
            )?)),
            ProtocolKind::Topic => Ok(ClientSession::Topic(Box::new(TopicClient::setup(
                channel,
                config,
                variant,
                topic_mode,
                candidate_model,
                rng,
            )?))),
            ProtocolKind::Virus => Ok(ClientSession::Virus(VirusScanClient::setup(
                channel, config, variant, rng,
            )?)),
            ProtocolKind::Search => Ok(ClientSession::Search(SearchClient::setup(
                channel, config, rng,
            )?)),
        }
    }

    /// Which function module this session runs.
    pub fn kind(&self) -> ProtocolKind {
        match self {
            ClientSession::Spam(_) => ProtocolKind::Spam,
            ClientSession::Topic(_) => ProtocolKind::Topic,
            ClientSession::Virus(_) => ProtocolKind::Virus,
            ClientSession::Search(_) => ProtocolKind::Search,
        }
    }

    /// Client-side storage consumed by the session state, in bytes: the
    /// encrypted model for the classification modules, the SSE master key,
    /// keyword counters and RLWE secret key for search sessions.
    pub fn model_storage_bytes(&self) -> usize {
        match self {
            ClientSession::Spam(c) => c.model_storage_bytes(),
            ClientSession::Topic(c) => c.model_storage_bytes(),
            ClientSession::Virus(c) => c.model_storage_bytes(),
            ClientSession::Search(c) => c.storage_bytes(),
        }
    }

    /// Offline phase: tops this session's precomputation pools up to
    /// `budget` future rounds, returning the number of work units produced.
    /// Topic clients pre-garble argmax circuits; Baseline-variant sessions
    /// additionally pre-exponentiate Paillier randomizers. Search clients
    /// have no client-side offline work (the provider banks the
    /// pre-encrypted responses) and return 0.
    pub fn precompute<R: Rng + ?Sized>(&mut self, budget: usize, rng: &mut R) -> usize {
        match self {
            ClientSession::Spam(c) => c.precompute(budget, rng),
            ClientSession::Topic(c) => c.precompute(budget, rng),
            ClientSession::Virus(c) => c.precompute(budget, rng),
            ClientSession::Search(_) => 0,
        }
    }

    /// Rounds the offline pools can currently serve without inline work.
    pub fn pool_depth(&self) -> usize {
        match self {
            ClientSession::Spam(c) => c.pool_depth(),
            ClientSession::Topic(c) => c.pool_depth(),
            ClientSession::Virus(c) => c.pool_depth(),
            ClientSession::Search(_) => 0,
        }
    }

    /// Runs one per-email round with `payload`, which must match the session
    /// kind: [`EmailPayload::Tokens`] for spam/topic,
    /// [`EmailPayload::Attachment`] for virus scanning, and
    /// [`EmailPayload::SearchIndex`] / [`EmailPayload::SearchQuery`] for
    /// search sessions.
    pub fn process_round<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        payload: &EmailPayload,
        rng: &mut R,
    ) -> Result<Verdict> {
        match (self, payload) {
            (ClientSession::Spam(c), EmailPayload::Tokens(features)) => Ok(Verdict::Spam {
                is_spam: c.classify(channel, features, rng)?,
            }),
            (ClientSession::Topic(c), EmailPayload::Tokens(features)) => Ok(Verdict::Topic {
                candidates: c.extract(channel, features, rng)?,
            }),
            (ClientSession::Virus(c), EmailPayload::Attachment(bytes)) => Ok(Verdict::Virus {
                is_malicious: c.scan(channel, bytes, rng)?,
            }),
            (ClientSession::Search(c), EmailPayload::SearchIndex { doc_id, body }) => {
                Ok(Verdict::SearchIndexed {
                    postings: c.index_email(channel, *doc_id, body)?,
                })
            }
            (ClientSession::Search(c), EmailPayload::SearchQuery(keyword)) => {
                let results = c.query(channel, keyword)?;
                Ok(Verdict::SearchHits {
                    ids: results.ids,
                    total: results.total,
                })
            }
            (session, _) => Err(PretzelError::Protocol(format!(
                "payload type does not match a {} session",
                session.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_classifiers::nb::{GrNbTrainer, MultinomialNbTrainer};
    use pretzel_classifiers::{LabeledExample, Trainer};
    use pretzel_transport::run_two_party;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    fn suite() -> ProviderModelSuite {
        let mut spam_corpus = Vec::new();
        let mut topic_corpus = Vec::new();
        for i in 0..20usize {
            spam_corpus.push(example(&[(i % 4, 2), ((i + 1) % 4, 1)], 1));
            spam_corpus.push(example(&[(4 + i % 4, 2), (4 + (i + 1) % 4, 1)], 0));
            for topic in 0..4usize {
                let base = topic * 4;
                topic_corpus.push(example(&[(base, 2), (base + 1 + i % 3, 1)], topic));
            }
        }
        let extractor = NGramExtractor::new(3, 256);
        let mut virus_corpus = Vec::new();
        for i in 0..20u8 {
            let bad = [0xde, 0xad, 0xbe, 0xef, 0xcc, 0xcc, 0xcc, i];
            virus_corpus.push(LabeledExample {
                features: extractor.extract(&bad),
                label: 1,
            });
            let good = format!("regular attachment number {i}");
            virus_corpus.push(LabeledExample {
                features: extractor.extract(good.as_bytes()),
                label: 0,
            });
        }
        ProviderModelSuite {
            spam: GrNbTrainer::default().train(&spam_corpus, 8, 2),
            topic: MultinomialNbTrainer::default().train(&topic_corpus, 16, 4),
            topic_mode: CandidateMode::Full,
            virus: GrNbTrainer::default().train(&virus_corpus, extractor.buckets, 2),
            virus_extractor: extractor,
            config: PretzelConfig::test(),
        }
    }

    fn roundtrip(kind: ProtocolKind, payload: EmailPayload) -> (Option<usize>, Verdict) {
        let suite_p = suite();
        let config = suite_p.config.clone();
        let (provider_res, client_res) = run_two_party(
            move |chan| -> crate::Result<Option<usize>> {
                let mut rng = StdRng::seed_from_u64(11);
                let mut session =
                    ProviderSession::setup(kind, chan, &suite_p, AheVariant::Pretzel, &mut rng)?;
                assert_eq!(session.kind(), kind);
                session.process_round(chan, &mut rng)
            },
            move |chan| -> crate::Result<Verdict> {
                let mut rng = StdRng::seed_from_u64(12);
                let mut session = ClientSession::setup(
                    kind,
                    chan,
                    &config,
                    AheVariant::Pretzel,
                    CandidateMode::Full,
                    None,
                    &mut rng,
                )?;
                assert_eq!(session.kind(), kind);
                assert!(session.model_storage_bytes() > 0);
                session.process_round(chan, &payload, &mut rng)
            },
        );
        (provider_res.unwrap(), client_res.unwrap())
    }

    #[test]
    fn spam_session_roundtrip() {
        let spammy = EmailPayload::Tokens(SparseVector::from_pairs(vec![(0, 3), (1, 1)]));
        let (provider_out, verdict) = roundtrip(ProtocolKind::Spam, spammy);
        assert_eq!(provider_out, None);
        assert_eq!(verdict, Verdict::Spam { is_spam: true });
    }

    #[test]
    fn topic_session_roundtrip() {
        let email = EmailPayload::Tokens(SparseVector::from_pairs(vec![(8, 3), (9, 1)]));
        let (provider_out, verdict) = roundtrip(ProtocolKind::Topic, email);
        assert_eq!(provider_out, Some(2), "topic 2 owns features 8..12");
        match verdict {
            Verdict::Topic { candidates } => assert!(candidates.contains(&2)),
            other => panic!("expected a topic verdict, got {other:?}"),
        }
    }

    #[test]
    fn virus_session_roundtrip() {
        let bad = EmailPayload::Attachment(vec![0xde, 0xad, 0xbe, 0xef, 0xcc, 0xcc, 0xcc, 0x01]);
        let (provider_out, verdict) = roundtrip(ProtocolKind::Virus, bad);
        assert_eq!(provider_out, None);
        assert_eq!(verdict, Verdict::Virus { is_malicious: true });
    }

    #[test]
    fn search_session_roundtrip() {
        let suite_p = suite();
        let config = suite_p.config.clone();
        let rounds = 3usize;
        let (provider_out, verdicts) = run_two_party(
            move |chan| -> crate::Result<Option<usize>> {
                let mut rng = StdRng::seed_from_u64(13);
                let mut session = ProviderSession::setup(
                    ProtocolKind::Search,
                    chan,
                    &suite_p,
                    AheVariant::Pretzel,
                    &mut rng,
                )?;
                assert_eq!(session.kind(), ProtocolKind::Search);
                assert!(session.precompute(2, &mut rng) > 0);
                assert_eq!(session.pool_depth(), 2);
                let mut last = None;
                for _ in 0..rounds {
                    last = session.process_round(chan, &mut rng)?;
                }
                Ok(last)
            },
            move |chan| -> crate::Result<Vec<Verdict>> {
                let mut rng = StdRng::seed_from_u64(14);
                let mut session = ClientSession::setup(
                    ProtocolKind::Search,
                    chan,
                    &config,
                    AheVariant::Pretzel,
                    CandidateMode::Full,
                    None,
                    &mut rng,
                )?;
                assert_eq!(session.kind(), ProtocolKind::Search);
                assert!(session.model_storage_bytes() > 0);
                assert_eq!(session.precompute(4, &mut rng), 0);
                let payloads = [
                    EmailPayload::SearchIndex {
                        doc_id: 7,
                        body: "encrypted budget spreadsheet".into(),
                    },
                    EmailPayload::SearchQuery("budget".into()),
                    EmailPayload::SearchQuery("absent".into()),
                ];
                payloads
                    .iter()
                    .map(|p| session.process_round(chan, p, &mut rng))
                    .collect()
            },
        );
        assert_eq!(provider_out.unwrap(), None);
        let verdicts = verdicts.unwrap();
        assert_eq!(verdicts[0], Verdict::SearchIndexed { postings: 3 });
        assert_eq!(
            verdicts[1],
            Verdict::SearchHits {
                ids: vec![7],
                total: 1
            }
        );
        assert_eq!(
            verdicts[2],
            Verdict::SearchHits {
                ids: vec![],
                total: 0
            }
        );
    }

    #[test]
    fn mismatched_payload_is_a_protocol_error() {
        let suite_p = suite();
        let config = suite_p.config.clone();
        let (_, client_res) = run_two_party(
            move |chan| {
                let mut rng = StdRng::seed_from_u64(21);
                let mut session = ProviderSession::setup(
                    ProtocolKind::Spam,
                    chan,
                    &suite_p,
                    AheVariant::Pretzel,
                    &mut rng,
                )
                .unwrap();
                // The mismatch is caught client-side before any message is
                // sent, so the provider round must fail with a closed channel.
                assert!(session.process_round(chan, &mut rng).is_err());
            },
            move |chan| {
                let mut rng = StdRng::seed_from_u64(22);
                let mut session = ClientSession::setup(
                    ProtocolKind::Spam,
                    chan,
                    &config,
                    AheVariant::Pretzel,
                    CandidateMode::Full,
                    None,
                    &mut rng,
                )
                .unwrap();
                session.process_round(chan, &EmailPayload::Attachment(vec![1, 2, 3]), &mut rng)
            },
        );
        assert!(matches!(client_res, Err(PretzelError::Protocol(_))));
    }

    #[test]
    fn wire_bytes_roundtrip() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_byte(kind.as_byte()).unwrap(), kind);
        }
        assert_eq!(ProtocolKind::Search.as_byte(), 4);
        assert!(ProtocolKind::from_byte(0).is_err());
        assert!(ProtocolKind::from_byte(5).is_err());
        for variant in [
            AheVariant::Pretzel,
            AheVariant::Baseline,
            AheVariant::PretzelNoOptimPack,
        ] {
            assert_eq!(variant_from_byte(variant_byte(variant)).unwrap(), variant);
        }
        assert!(variant_from_byte(0).is_err());
    }
}
