//! Uniform, session-reusable entry points over the registered function
//! modules.
//!
//! A serving layer that multiplexes many client sessions (see the
//! `pretzel_server` mailroom) needs one dispatchable shape per endpoint
//! instead of module-specific types. [`ProviderSession`] and
//! [`ClientSession`] are that shape: thin wrappers over the object-safe
//! [`ProviderModule`] / [`ClientModule`] traits, produced by looking a
//! handshake [`WireTag`] up in a [`ProtocolRegistry`]. They contain **no**
//! per-kind dispatch — every protocol the registry knows (the four built-ins
//! and anything registered from outside, e.g. `examples/mailroom.rs`'s
//! attachment-analytics module) flows through the same code, and neither
//! wrapper changes a byte of any protocol's wire format.
//!
//! The lifecycle both wrappers model is the one §3.3/§4 prescribe: one
//! **setup** phase per (client, provider) pair — joint randomness, encrypted
//! model transfer, base OTs — whose state is then **reused** across an
//! arbitrary number of cheap per-email rounds. Between setup and the rounds
//! sits an optional **offline phase**: `precompute(budget)` fills
//! per-session pools (pre-garbled circuits, pre-exponentiated Paillier
//! randomizers) that the online rounds drain, falling back to inline
//! computation whenever a pool runs dry. Rounds come in two flavours:
//! `process_round` serves one email, `process_batch` serves N in one
//! coalesced exchange (same verdicts, far fewer frames — see
//! `pretzel_transport::batch`). Pool depth and batching only move work off
//! the latency path — verdicts are identical either way, which
//! `tests/phase_split.rs` and `tests/batching.rs` pin.

use std::sync::Arc;

use rand::{Rng, RngCore};

use pretzel_classifiers::{LinearModel, NGramExtractor, SparseVector};
use pretzel_sse::DocId;
use pretzel_transport::wire::NegotiatedProfile;
use pretzel_transport::Channel;

use crate::bank::{PoolStats, PrecomputeSource};
use crate::config::PretzelConfig;
use crate::registry::{ClientContext, ClientModule, ProtocolRegistry, ProviderModule, WireTag};
use crate::spam::AheVariant;
use crate::topic::CandidateMode;
use crate::Result;

/// Wire encoding of an [`AheVariant`] for session handshakes.
pub fn variant_byte(variant: AheVariant) -> u8 {
    match variant {
        AheVariant::Pretzel => 1,
        AheVariant::Baseline => 2,
        AheVariant::PretzelNoOptimPack => 3,
    }
}

/// Decodes an [`AheVariant`] handshake byte.
pub fn variant_from_byte(b: u8) -> Result<AheVariant> {
    match b {
        1 => Ok(AheVariant::Pretzel),
        2 => Ok(AheVariant::Baseline),
        3 => Ok(AheVariant::PretzelNoOptimPack),
        other => Err(crate::PretzelError::Protocol(format!(
            "unknown AHE variant byte {other}"
        ))),
    }
}

/// Everything a provider needs to serve the built-in modules: one trained
/// model per classification module plus the shared parameter preset.
/// Custom modules registered from outside receive the same suite and use
/// whatever subset applies (usually just [`ProviderModelSuite::config`]).
///
/// The suite is immutable once built, so a serving layer can share one
/// instance across all of its worker threads.
#[derive(Clone, Debug)]
pub struct ProviderModelSuite {
    /// Two-class spam model (class 1 = spam).
    pub spam: LinearModel,
    /// B-class topic model.
    pub topic: LinearModel,
    /// Candidate pruning mode used by topic sessions (must match the
    /// clients' configuration — it fixes the argmax circuit shape).
    pub topic_mode: CandidateMode,
    /// Two-class attachment model (class 1 = malicious).
    pub virus: LinearModel,
    /// Feature space of the virus model (public parameters, §2.1).
    pub virus_extractor: NGramExtractor,
    /// Protocol parameter preset shared by every session.
    pub config: PretzelConfig,
}

/// Provider endpoint of one live session: a registry-resolved
/// [`ProviderModule`] behind a uniform, module-agnostic surface.
///
/// Every session carries a [`NegotiatedProfile`] — the wire protocol
/// version and capability set agreed at handshake time. Sessions built
/// without an explicit negotiation (direct two-party drivers, tests)
/// default to the implicit legacy profile,
/// [`NegotiatedProfile::legacy_v1`]; the serving layer installs the real
/// outcome via [`ProviderSession::with_profile`].
pub struct ProviderSession {
    module: Box<dyn ProviderModule>,
    profile: NegotiatedProfile,
}

impl ProviderSession {
    /// Runs the setup phase of the module registered under `tag` against
    /// the peer on `channel`, returning reusable per-session state. Unknown
    /// tags fail with the registry's [`crate::PretzelError::Protocol`].
    pub fn setup<C: Channel, R: Rng>(
        registry: &ProtocolRegistry,
        tag: WireTag,
        channel: &mut C,
        suite: &ProviderModelSuite,
        variant: AheVariant,
        rng: &mut R,
    ) -> Result<Self> {
        let module = registry.from_wire_tag(tag)?.provider_setup(
            as_dyn_channel(channel),
            suite,
            variant,
            as_dyn_rng(rng),
        )?;
        Ok(ProviderSession {
            module,
            profile: NegotiatedProfile::legacy_v1(),
        })
    }

    /// [`ProviderSession::setup`] with a [`PrecomputeSource`] available from
    /// the first setup frame onward: modules draw banked artifacts during
    /// setup where possible (base-OT sender state) and register the
    /// key-dependent reservoirs they will consume per round.
    pub fn setup_with_source<C: Channel, R: Rng>(
        registry: &ProtocolRegistry,
        tag: WireTag,
        channel: &mut C,
        suite: &ProviderModelSuite,
        variant: AheVariant,
        source: &Arc<dyn PrecomputeSource>,
        rng: &mut R,
    ) -> Result<Self> {
        let module = registry.from_wire_tag(tag)?.provider_setup_with_source(
            as_dyn_channel(channel),
            suite,
            variant,
            source,
            as_dyn_rng(rng),
        )?;
        Ok(ProviderSession {
            module,
            profile: NegotiatedProfile::legacy_v1(),
        })
    }

    /// Wraps an already-set-up provider endpoint (for drivers that hold the
    /// module directly instead of going through a registry).
    pub fn from_module(module: Box<dyn ProviderModule>) -> Self {
        ProviderSession {
            module,
            profile: NegotiatedProfile::legacy_v1(),
        }
    }

    /// Installs the handshake outcome this session was negotiated under.
    pub fn with_profile(mut self, profile: NegotiatedProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The wire protocol version and capability set this session runs
    /// under ([`NegotiatedProfile::legacy_v1`] when never negotiated).
    pub fn negotiated(&self) -> NegotiatedProfile {
        self.profile
    }

    /// The handshake byte of the module this session runs.
    pub fn wire_tag(&self) -> WireTag {
        self.module.wire_tag()
    }

    /// Human-readable name of the module this session runs.
    pub fn display_name(&self) -> &'static str {
        self.module.display_name()
    }

    /// Offline phase: tops this session's precomputation pools up to
    /// `budget` future rounds, returning the number of work units produced
    /// (0 when the session's module has no provider-side offline work, e.g.
    /// topic sessions where the client garbles).
    ///
    /// This inline, on-the-serving-thread top-up is a legacy shim over the
    /// session-local pools: attach a fleet-wide
    /// [`crate::bank::PrecomputeBank`] instead (via
    /// [`ProviderSession::attach_source`] or the mailroom's
    /// `MailroomConfig::builder().bank(..)` wiring) and let background
    /// producers do the offline work. Budget-driven sessions keep working
    /// unchanged and produce byte-identical verdicts.
    #[deprecated(
        since = "0.1.0",
        note = "attach a PrecomputeSource (fleet bank) instead; see \
                pretzel_core::bank and MailroomConfig::builder().bank(..)"
    )]
    pub fn precompute<R: Rng>(&mut self, budget: usize, rng: &mut R) -> usize {
        self.module.precompute(budget, as_dyn_rng(rng))
    }

    /// Rounds the offline pools can currently serve without inline work.
    pub fn pool_depth(&self) -> usize {
        self.module.pool_depth()
    }

    /// Hands the session's module a [`PrecomputeSource`] to draw precomputed
    /// artifacts from (see [`ProviderModule::attach_source`]).
    pub fn attach_source(&mut self, source: Arc<dyn PrecomputeSource>) {
        self.module.attach_source(source);
    }

    /// Per-kind observability for this session's local pools
    /// ([`ProviderModule::pool_stats`]).
    pub fn pool_stats(&self) -> Vec<PoolStats> {
        self.module.pool_stats()
    }

    /// Runs one per-email round. Returns the module's per-round provider
    /// output — the topic index for topic sessions (the only built-in whose
    /// output goes to the provider, Guarantee 3) and `None` for the others.
    ///
    /// Draws from the pools filled by [`ProviderSession::precompute`] when
    /// they are non-empty and computes inline otherwise.
    pub fn process_round<C: Channel, R: Rng>(
        &mut self,
        channel: &mut C,
        rng: &mut R,
    ) -> Result<Option<usize>> {
        self.module
            .process_round(as_dyn_channel(channel), as_dyn_rng(rng))
    }

    /// Runs `count` rounds as one batched exchange against a client driving
    /// [`ClientSession::process_batch`] with the same count. Outputs equal
    /// `count` sequential [`ProviderSession::process_round`] calls; only the
    /// frame count changes.
    pub fn process_batch<C: Channel, R: Rng>(
        &mut self,
        channel: &mut C,
        count: usize,
        rng: &mut R,
    ) -> Result<Vec<Option<usize>>> {
        self.module
            .process_batch(as_dyn_channel(channel), count, as_dyn_rng(rng))
    }
}

/// One round's input as submitted to a client session: token counts for
/// spam/topic, raw bytes for virus scanning (the provider's extractor hashes
/// them), index/query operations for search sessions, and opaque bytes for
/// custom registered modules.
#[derive(Clone, Debug)]
pub enum EmailPayload {
    /// Sparse token counts over the model's feature space.
    Tokens(SparseVector),
    /// Raw attachment bytes.
    Attachment(Vec<u8>),
    /// Search session: index one email body under a stable document id.
    SearchIndex {
        /// Stable identifier the matching queries will return.
        doc_id: DocId,
        /// Decrypted email body to tokenize and index.
        body: String,
    },
    /// Search session: single-keyword query.
    SearchQuery(String),
    /// Module-defined bytes for custom registered functions (the closed
    /// variants above cover only the built-ins).
    Opaque(Vec<u8>),
}

/// What the client learned from one per-email round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Spam session: the one-bit verdict (Guarantee 2).
    Spam {
        /// `true` when the email was classified as spam.
        is_spam: bool,
    },
    /// Topic session: the candidate set the client submitted (the verdict
    /// itself — the chosen index — goes to the provider, Guarantee 3).
    Topic {
        /// Candidate topic indices submitted for the secure argmax.
        candidates: Vec<usize>,
    },
    /// Virus session: the one-bit verdict.
    Virus {
        /// `true` when the attachment was classified as malicious.
        is_malicious: bool,
    },
    /// Search session, index round: the upload was stored.
    SearchIndexed {
        /// Encrypted postings the round added to the provider's index.
        postings: usize,
    },
    /// Search session, query round: the matching document ids.
    SearchHits {
        /// Ids of the returned matching emails (at most one response's
        /// capacity).
        ids: Vec<DocId>,
        /// Total matches at the provider; `total > ids.len()` means the
        /// result set was truncated to the per-response capacity.
        total: u64,
    },
    /// Scalar output of a custom registered module.
    Custom {
        /// Wire tag of the module that produced the value.
        tag: WireTag,
        /// Module-defined scalar result.
        value: u64,
    },
}

/// Client endpoint of one live session, mirroring [`ProviderSession`]
/// (including the carried [`NegotiatedProfile`]).
pub struct ClientSession {
    module: Box<dyn ClientModule>,
    profile: NegotiatedProfile,
}

impl ClientSession {
    /// Runs the setup phase of the module registered under `tag` against
    /// the provider on `channel`.
    pub fn setup<C: Channel, R: Rng>(
        registry: &ProtocolRegistry,
        tag: WireTag,
        channel: &mut C,
        ctx: &ClientContext,
        rng: &mut R,
    ) -> Result<Self> {
        let module = registry.from_wire_tag(tag)?.client_setup(
            as_dyn_channel(channel),
            ctx,
            as_dyn_rng(rng),
        )?;
        Ok(ClientSession {
            module,
            profile: NegotiatedProfile::legacy_v1(),
        })
    }

    /// Wraps an already-set-up client endpoint.
    pub fn from_module(module: Box<dyn ClientModule>) -> Self {
        ClientSession {
            module,
            profile: NegotiatedProfile::legacy_v1(),
        }
    }

    /// Installs the handshake outcome this session was negotiated under.
    pub fn with_profile(mut self, profile: NegotiatedProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The wire protocol version and capability set this session runs
    /// under ([`NegotiatedProfile::legacy_v1`] when never negotiated).
    pub fn negotiated(&self) -> NegotiatedProfile {
        self.profile
    }

    /// The handshake byte of the module this session runs.
    pub fn wire_tag(&self) -> WireTag {
        self.module.wire_tag()
    }

    /// Human-readable name of the module this session runs.
    pub fn display_name(&self) -> &'static str {
        self.module.display_name()
    }

    /// Client-side storage consumed by the session state, in bytes: the
    /// encrypted model for the classification modules, the SSE master key,
    /// keyword counters and RLWE secret key for search sessions.
    pub fn model_storage_bytes(&self) -> usize {
        self.module.model_storage_bytes()
    }

    /// Offline phase: tops this session's precomputation pools up to
    /// `budget` future rounds, returning the number of work units produced.
    /// Topic clients pre-garble argmax circuits; Baseline-variant sessions
    /// additionally pre-exponentiate Paillier randomizers. Modules without
    /// client-side offline work return 0.
    pub fn precompute<R: Rng>(&mut self, budget: usize, rng: &mut R) -> usize {
        self.module.precompute(budget, as_dyn_rng(rng))
    }

    /// Rounds the offline pools can currently serve without inline work.
    pub fn pool_depth(&self) -> usize {
        self.module.pool_depth()
    }

    /// Runs one per-email round with `payload`, which must match the
    /// session's module: [`EmailPayload::Tokens`] for spam/topic,
    /// [`EmailPayload::Attachment`] for virus scanning,
    /// [`EmailPayload::SearchIndex`] / [`EmailPayload::SearchQuery`] for
    /// search sessions, and whatever a custom module documents.
    pub fn process_round<C: Channel, R: Rng>(
        &mut self,
        channel: &mut C,
        payload: &EmailPayload,
        rng: &mut R,
    ) -> Result<Verdict> {
        self.module
            .process_round(as_dyn_channel(channel), payload, as_dyn_rng(rng))
    }

    /// Runs one batch of rounds against a provider executing
    /// [`ProviderSession::process_batch`] with the same count. Verdicts equal
    /// sequential [`ClientSession::process_round`] calls over the same
    /// payloads.
    pub fn process_batch<C: Channel, R: Rng>(
        &mut self,
        channel: &mut C,
        payloads: &[EmailPayload],
        rng: &mut R,
    ) -> Result<Vec<Verdict>> {
        self.module
            .process_batch(as_dyn_channel(channel), payloads, as_dyn_rng(rng))
    }
}

/// Short name of a payload's shape, for mismatch diagnostics.
pub(crate) fn payload_kind(payload: &EmailPayload) -> &'static str {
    match payload {
        EmailPayload::Tokens(_) => "tokens",
        EmailPayload::Attachment(_) => "attachment",
        EmailPayload::SearchIndex { .. } => "search-index",
        EmailPayload::SearchQuery(_) => "search-query",
        EmailPayload::Opaque(_) => "opaque",
    }
}

/// The error every built-in module raises for a payload of the wrong shape.
pub(crate) fn payload_mismatch(module: &str, payload: &EmailPayload) -> crate::PretzelError {
    crate::PretzelError::Protocol(format!(
        "{} payload does not match a {module} session",
        payload_kind(payload)
    ))
}

/// Coerces a concrete channel to the object-safe form the module traits use.
fn as_dyn_channel<C: Channel>(channel: &mut C) -> &mut (dyn Channel + '_) {
    channel
}

/// Coerces a concrete RNG to the object-safe form the module traits use.
fn as_dyn_rng<R: RngCore>(rng: &mut R) -> &mut (dyn RngCore + '_) {
    rng
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchFunction;
    use crate::spam::SpamFunction;
    use crate::topic::TopicFunction;
    use crate::virus::VirusFunction;
    use crate::PretzelError;
    use pretzel_classifiers::nb::{GrNbTrainer, MultinomialNbTrainer};
    use pretzel_classifiers::{LabeledExample, Trainer};
    use pretzel_transport::run_two_party;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    fn suite() -> ProviderModelSuite {
        let mut spam_corpus = Vec::new();
        let mut topic_corpus = Vec::new();
        for i in 0..20usize {
            spam_corpus.push(example(&[(i % 4, 2), ((i + 1) % 4, 1)], 1));
            spam_corpus.push(example(&[(4 + i % 4, 2), (4 + (i + 1) % 4, 1)], 0));
            for topic in 0..4usize {
                let base = topic * 4;
                topic_corpus.push(example(&[(base, 2), (base + 1 + i % 3, 1)], topic));
            }
        }
        let extractor = NGramExtractor::new(3, 256);
        let mut virus_corpus = Vec::new();
        for i in 0..20u8 {
            let bad = [0xde, 0xad, 0xbe, 0xef, 0xcc, 0xcc, 0xcc, i];
            virus_corpus.push(LabeledExample {
                features: extractor.extract(&bad),
                label: 1,
            });
            let good = format!("regular attachment number {i}");
            virus_corpus.push(LabeledExample {
                features: extractor.extract(good.as_bytes()),
                label: 0,
            });
        }
        ProviderModelSuite {
            spam: GrNbTrainer::default().train(&spam_corpus, 8, 2),
            topic: MultinomialNbTrainer::default().train(&topic_corpus, 16, 4),
            topic_mode: CandidateMode::Full,
            virus: GrNbTrainer::default().train(&virus_corpus, extractor.buckets, 2),
            virus_extractor: extractor,
            config: PretzelConfig::test(),
        }
    }

    fn roundtrip(tag: WireTag, payload: EmailPayload) -> (Option<usize>, Verdict) {
        let suite_p = suite();
        let config = suite_p.config.clone();
        let (provider_res, client_res) = run_two_party(
            move |chan| -> crate::Result<Option<usize>> {
                let registry = ProtocolRegistry::builtin();
                let mut rng = StdRng::seed_from_u64(11);
                let mut session = ProviderSession::setup(
                    &registry,
                    tag,
                    chan,
                    &suite_p,
                    AheVariant::Pretzel,
                    &mut rng,
                )?;
                assert_eq!(session.wire_tag(), tag);
                session.process_round(chan, &mut rng)
            },
            move |chan| -> crate::Result<Verdict> {
                let registry = ProtocolRegistry::builtin();
                let mut rng = StdRng::seed_from_u64(12);
                let ctx = ClientContext::new(config);
                let mut session = ClientSession::setup(&registry, tag, chan, &ctx, &mut rng)?;
                assert_eq!(session.wire_tag(), tag);
                assert!(session.model_storage_bytes() > 0);
                session.process_round(chan, &payload, &mut rng)
            },
        );
        (provider_res.unwrap(), client_res.unwrap())
    }

    #[test]
    fn spam_session_roundtrip() {
        let spammy = EmailPayload::Tokens(SparseVector::from_pairs(vec![(0, 3), (1, 1)]));
        let (provider_out, verdict) = roundtrip(SpamFunction::WIRE_TAG, spammy);
        assert_eq!(provider_out, None);
        assert_eq!(verdict, Verdict::Spam { is_spam: true });
    }

    #[test]
    fn topic_session_roundtrip() {
        let email = EmailPayload::Tokens(SparseVector::from_pairs(vec![(8, 3), (9, 1)]));
        let (provider_out, verdict) = roundtrip(TopicFunction::WIRE_TAG, email);
        assert_eq!(provider_out, Some(2), "topic 2 owns features 8..12");
        match verdict {
            Verdict::Topic { candidates } => assert!(candidates.contains(&2)),
            other => panic!("expected a topic verdict, got {other:?}"),
        }
    }

    #[test]
    fn virus_session_roundtrip() {
        let bad = EmailPayload::Attachment(vec![0xde, 0xad, 0xbe, 0xef, 0xcc, 0xcc, 0xcc, 0x01]);
        let (provider_out, verdict) = roundtrip(VirusFunction::WIRE_TAG, bad);
        assert_eq!(provider_out, None);
        assert_eq!(verdict, Verdict::Virus { is_malicious: true });
    }

    #[test]
    #[allow(deprecated)] // exercises the legacy per-session precompute shim
    fn search_session_roundtrip() {
        let suite_p = suite();
        let config = suite_p.config.clone();
        let rounds = 3usize;
        let (provider_out, verdicts) = run_two_party(
            move |chan| -> crate::Result<Option<usize>> {
                let registry = ProtocolRegistry::builtin();
                let mut rng = StdRng::seed_from_u64(13);
                let mut session = ProviderSession::setup(
                    &registry,
                    SearchFunction::WIRE_TAG,
                    chan,
                    &suite_p,
                    AheVariant::Pretzel,
                    &mut rng,
                )?;
                assert_eq!(session.display_name(), "search");
                assert!(session.precompute(2, &mut rng) > 0);
                assert_eq!(session.pool_depth(), 2);
                let mut last = None;
                for _ in 0..rounds {
                    last = session.process_round(chan, &mut rng)?;
                }
                Ok(last)
            },
            move |chan| -> crate::Result<Vec<Verdict>> {
                let registry = ProtocolRegistry::builtin();
                let mut rng = StdRng::seed_from_u64(14);
                let ctx = ClientContext::new(config);
                let mut session = ClientSession::setup(
                    &registry,
                    SearchFunction::WIRE_TAG,
                    chan,
                    &ctx,
                    &mut rng,
                )?;
                assert_eq!(session.wire_tag(), SearchFunction::WIRE_TAG);
                assert!(session.model_storage_bytes() > 0);
                assert_eq!(session.precompute(4, &mut rng), 0);
                let payloads = [
                    EmailPayload::SearchIndex {
                        doc_id: 7,
                        body: "encrypted budget spreadsheet".into(),
                    },
                    EmailPayload::SearchQuery("budget".into()),
                    EmailPayload::SearchQuery("absent".into()),
                ];
                payloads
                    .iter()
                    .map(|p| session.process_round(chan, p, &mut rng))
                    .collect()
            },
        );
        assert_eq!(provider_out.unwrap(), None);
        let verdicts = verdicts.unwrap();
        assert_eq!(verdicts[0], Verdict::SearchIndexed { postings: 3 });
        assert_eq!(
            verdicts[1],
            Verdict::SearchHits {
                ids: vec![7],
                total: 1
            }
        );
        assert_eq!(
            verdicts[2],
            Verdict::SearchHits {
                ids: vec![],
                total: 0
            }
        );
    }

    #[test]
    fn mismatched_payload_is_a_protocol_error() {
        let suite_p = suite();
        let config = suite_p.config.clone();
        let (_, client_res) = run_two_party(
            move |chan| {
                let registry = ProtocolRegistry::builtin();
                let mut rng = StdRng::seed_from_u64(21);
                let mut session = ProviderSession::setup(
                    &registry,
                    SpamFunction::WIRE_TAG,
                    chan,
                    &suite_p,
                    AheVariant::Pretzel,
                    &mut rng,
                )
                .unwrap();
                // The mismatch is caught client-side before any message is
                // sent, so the provider round must fail with a closed channel.
                assert!(session.process_round(chan, &mut rng).is_err());
            },
            move |chan| {
                let registry = ProtocolRegistry::builtin();
                let mut rng = StdRng::seed_from_u64(22);
                let ctx = ClientContext::new(config);
                let mut session =
                    ClientSession::setup(&registry, SpamFunction::WIRE_TAG, chan, &ctx, &mut rng)
                        .unwrap();
                session.process_round(chan, &EmailPayload::Attachment(vec![1, 2, 3]), &mut rng)
            },
        );
        assert!(matches!(client_res, Err(PretzelError::Protocol(_))));
    }

    #[test]
    fn unknown_tag_setup_fails_before_any_traffic() {
        let suite_p = suite();
        let registry = ProtocolRegistry::builtin();
        let (mut chan, _peer) = pretzel_transport::memory_pair();
        let mut rng = StdRng::seed_from_u64(31);
        let err = ProviderSession::setup(
            &registry,
            0xEE,
            &mut chan,
            &suite_p,
            AheVariant::Pretzel,
            &mut rng,
        );
        assert!(matches!(err, Err(PretzelError::Protocol(_))));
    }

    #[test]
    fn variant_bytes_roundtrip() {
        for variant in [
            AheVariant::Pretzel,
            AheVariant::Baseline,
            AheVariant::PretzelNoOptimPack,
        ] {
            assert_eq!(variant_from_byte(variant_byte(variant)).unwrap(), variant);
        }
        assert!(variant_from_byte(0).is_err());
    }
}
