//! Private spam filtering (paper §3.3 Baseline, §4.1–§4.2 Pretzel).
//!
//! Roles and information flow (Figure 2 applied to spam, B = 2):
//!
//! * **Setup phase** (run once per client): the two parties derive joint
//!   randomness for the AHE parameters (§3.3 footnote 3), the provider
//!   quantizes its model, encrypts it column-group-wise under its own AHE
//!   key, and ships the encrypted model plus public key to the client (this
//!   is the client-storage cost of Figure 8); both parties also run the base
//!   OTs of the Yao session so per-email circuits only use cheap OT
//!   extension.
//! * **Per-email phase**: the client (who has the decrypted email) computes
//!   the encrypted per-class dot products, blinds them and sends them to the
//!   provider; the provider decrypts and the two parties run Yao's protocol
//!   on a circuit that removes the blinding and compares the spam score to
//!   the ham score. Only the client learns the resulting bit (Guarantee 2,
//!   §4.4).
//!
//! Two variants share this module: [`AheVariant::Pretzel`] (XPIR-BV with
//! across-row packing) and [`AheVariant::Baseline`] (Paillier with legacy
//! packing), which is exactly the pair compared in Figures 7 and 8.
//!
//! Beyond the one-time setup, each endpoint supports an explicit **offline
//! phase** (`precompute`): the provider garbles comparison circuits ahead of
//! time, and a Baseline client pre-exponentiates Paillier randomizers. The
//! per-email path drains those pools and falls back to inline computation
//! when they run dry, so pool depth never affects correctness — only latency.

use std::sync::Arc;

use rand::{Rng, RngCore};

use pretzel_classifiers::{LinearModel, QuantizedModel, SparseVector};
use pretzel_gc::{
    spam_compare_circuit, to_bits, Circuit, GarblingPool, OutputMode, PrecomputedGarbling,
    YaoEvaluator, YaoGarbler,
};
use pretzel_sdp::paillier_pack::{self, PaillierPackParams};
use pretzel_sdp::rlwe_pack::{self, Packing};
use pretzel_sdp::ModelMatrix;
use pretzel_transport::{pack_frames, unpack_frames, Channel};

use crate::bank::{self, PoolStats, PrecomputeSource, ReservoirId, ReservoirSpec, KIND_GARBLINGS};
use crate::config::PretzelConfig;
use crate::registry::{ClientContext, ClientModule, FunctionModule, ProviderModule, WireTag};
use crate::session::{EmailPayload, ProviderModelSuite, Verdict};
use crate::setup::{joint_randomness_initiator, joint_randomness_responder};
use crate::{parse_u64, u64_bytes, PretzelError, Result};

/// Which additively homomorphic cryptosystem (and packing) a session uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AheVariant {
    /// XPIR-BV (Ring-LWE) with Pretzel's across-row packing (§4.1–§4.2).
    Pretzel,
    /// Paillier with GLLM's legacy packing — the §3.3 Baseline.
    Baseline,
    /// XPIR-BV with legacy per-row packing — the "Pretzel-NoOptimPack"
    /// ablation of Figure 8.
    PretzelNoOptimPack,
}

/// Builds the quantized model matrix (weights plus bias row) the secure
/// protocols operate on.
pub fn quantize_to_matrix(model: &LinearModel, weight_bits: u32) -> (QuantizedModel, ModelMatrix) {
    let q = QuantizedModel::from_model(model, weight_bits);
    let matrix = ModelMatrix::from_rows(q.rows, q.cols, q.data.clone());
    (q, matrix)
}

enum ProviderCrypto {
    Pretzel {
        sk: pretzel_rlwe::SecretKey,
    },
    Baseline {
        // Boxed: a Paillier secret key (CRT contexts included) dwarfs the
        // RLWE variant, and clippy::large_enum_variant fires otherwise.
        sk: Box<pretzel_paillier::SecretKey>,
        slot_bits: u32,
        slots_per_ct: usize,
    },
}

/// Provider endpoint of the spam-filtering module.
pub struct SpamProvider {
    crypto: ProviderCrypto,
    yao: YaoGarbler,
    circuit: Circuit,
    width: usize,
    /// Offline-garbled circuits awaiting their online rounds.
    ready: GarblingPool,
    /// Fleet bank attachment: the shared source plus this session's garbling
    /// reservoir (keyed by the structural circuit fingerprint).
    source: Option<(Arc<dyn PrecomputeSource>, ReservoirId)>,
}

enum ClientCrypto {
    Pretzel {
        pk: pretzel_rlwe::PublicKey,
        model: rlwe_pack::EncryptedModel,
    },
    Baseline {
        pk: pretzel_paillier::PublicKey,
        model: paillier_pack::PaillierEncryptedModel,
    },
}

/// Client endpoint of the spam-filtering module.
pub struct SpamClient {
    crypto: ClientCrypto,
    yao: YaoEvaluator,
    circuit: Circuit,
    width: usize,
    /// Row index of the bias row (= number of model features).
    bias_row: usize,
    max_freq: u64,
    /// Offline-precomputed Paillier randomizers (Baseline variant only; the
    /// Pretzel RLWE path has no per-round public-key exponentiation to pool).
    pool: pretzel_paillier::RandomnessPool,
}

impl SpamProvider {
    /// Runs the setup phase as the provider: encrypts and ships the model,
    /// then establishes the Yao session. `model` is the provider's trained
    /// spam model (2 classes, class 1 = spam).
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        model: &LinearModel,
        config: &PretzelConfig,
        variant: AheVariant,
        rng: &mut R,
    ) -> Result<Self> {
        assert_eq!(model.num_classes(), 2, "spam filtering uses two classes");
        let (_, matrix) = quantize_to_matrix(model, config.weight_bits);
        let seed = joint_randomness_initiator(channel, rng)?;

        // Metadata: rows, cols.
        channel.send(&u64_bytes(matrix.rows() as u64))?;
        channel.send(&u64_bytes(matrix.cols() as u64))?;

        let (crypto, width) = match variant {
            AheVariant::Pretzel | AheVariant::PretzelNoOptimPack => {
                let params = config.rlwe_params();
                let (sk, pk) = pretzel_rlwe::keygen(&params, Some(&seed), rng);
                let packing = if variant == AheVariant::Pretzel {
                    Packing::AcrossRow
                } else {
                    Packing::LegacyPerRow
                };
                let enc = rlwe_pack::encrypt_model(&pk, &matrix, packing, rng)?;
                channel.send(&pk.to_bytes())?;
                channel.send(&u64_bytes(enc.ciphertext_count() as u64))?;
                let mut blob =
                    Vec::with_capacity(enc.ciphertext_count() * params.ciphertext_bytes());
                for ct in enc.ciphertexts() {
                    blob.extend_from_slice(&ct.to_bytes());
                }
                channel.send(&blob)?;
                (
                    ProviderCrypto::Pretzel { sk },
                    config.rlwe_plain_bits as usize,
                )
            }
            AheVariant::Baseline => {
                let sk = pretzel_paillier::keygen(config.paillier_bits, rng);
                let pk = sk.public().clone();
                let pack = PaillierPackParams {
                    slot_bits: config.paillier_slot_bits,
                };
                let slots_per_ct = pack.slots_per_ct(&pk);
                let enc = paillier_pack::encrypt_model(&pk, &matrix, pack, rng)?;
                channel.send(&pk.to_bytes())?;
                channel.send(&u64_bytes(enc.ciphertext_count() as u64))?;
                let ct_len = pretzel_paillier::Ciphertext::serialized_len(pk.n_bits());
                let mut blob = Vec::with_capacity(enc.ciphertext_count() * ct_len);
                for ct in enc.ciphertexts() {
                    blob.extend_from_slice(&ct.to_bytes(&pk));
                }
                channel.send(&blob)?;
                (
                    ProviderCrypto::Baseline {
                        sk: Box::new(sk),
                        slot_bits: config.paillier_slot_bits,
                        slots_per_ct,
                    },
                    config.paillier_slot_bits as usize,
                )
            }
        };

        let group = config.ot_group(&seed);
        let yao = YaoGarbler::setup(channel, &group, rng)?;
        Ok(SpamProvider {
            crypto,
            yao,
            circuit: spam_compare_circuit(width),
            width,
            ready: GarblingPool::new(),
            source: None,
        })
    }

    /// Offline phase: tops the pool of pre-garbled comparison circuits up to
    /// `target` (one per future email). Returns the number of circuits
    /// garbled. Run this on idle cycles between rounds; the per-email path
    /// then skips garbling entirely.
    pub fn precompute<R: Rng + ?Sized>(&mut self, target: usize, rng: &mut R) -> usize {
        self.ready.refill(&self.circuit, target, rng)
    }

    /// Emails the offline pool can currently serve without inline garbling.
    pub fn pool_depth(&self) -> usize {
        self.ready.depth()
    }

    /// Attaches a fleet-wide precompute source: registers this session's
    /// comparison-circuit garbling reservoir (keyed by the structural
    /// [`Circuit::fingerprint`]) so background producers keep it full, and
    /// makes the online draw ladder consult the bank between the local pool
    /// and the inline fallback. Re-attaching releases the prior registration.
    pub fn attach_source(&mut self, source: Arc<dyn PrecomputeSource>) {
        let id = ReservoirId::garblings(self.circuit.fingerprint());
        let circuit = self.circuit.clone();
        source.register(ReservoirSpec::new(
            id,
            Arc::new(move |rng: &mut dyn RngCore| {
                Box::new(PrecomputedGarbling::garble(&circuit, rng)) as bank::Artifact
            }),
        ));
        if let Some((old, old_id)) = self.source.replace((source, id)) {
            old.release(&old_id);
        }
    }

    /// Per-kind pool gauge: local garbling depth plus dry-draw fallbacks.
    pub fn garbling_stats(&self) -> PoolStats {
        PoolStats {
            kind: KIND_GARBLINGS,
            depth: self.ready.depth() as u64,
            fallback_draws: self.ready.fallback_draws(),
        }
    }

    /// Online draw ladder: local pool first, then a work-stealing bank draw,
    /// then inline garbling (counted as a fallback both locally and, when a
    /// bank is attached, at the bank).
    fn draw_garbling<R: Rng + ?Sized>(&mut self, rng: &mut R) -> PrecomputedGarbling {
        if let Some(pre) = self.ready.try_draw() {
            return pre;
        }
        if let Some((source, id)) = &self.source {
            if let Some(artifact) = source.draw(id) {
                if let Ok(pre) = artifact.downcast::<PrecomputedGarbling>() {
                    if pre.matches(&self.circuit) {
                        return *pre;
                    }
                }
            }
        }
        self.ready.note_fallback();
        if let Some((source, id)) = &self.source {
            source.record_fallback(id);
        }
        PrecomputedGarbling::garble(&self.circuit, rng)
    }

    /// Decrypts one round's blinded (ham, spam) dot products and lays them
    /// out as garbler input bits (spam column first, matching the circuit).
    fn garbler_bits_for(&self, blob: &[u8]) -> Result<Vec<bool>> {
        let blinded = match &self.crypto {
            ProviderCrypto::Pretzel { sk } => {
                let ct = pretzel_rlwe::Ciphertext::from_bytes(sk.params(), blob)
                    .map_err(|e| PretzelError::Ahe(e.to_string()))?;
                let dec = rlwe_pack::provider_decrypt(sk, &[ct], 2);
                [dec[0][0], dec[0][1]]
            }
            ProviderCrypto::Baseline {
                sk,
                slot_bits,
                slots_per_ct,
            } => {
                let ct = pretzel_paillier::Ciphertext::from_bytes(blob);
                let dec = paillier_pack::provider_decrypt(sk, 2, *slot_bits, *slots_per_ct, &[ct])?;
                [dec[0], dec[1]]
            }
        };
        let mask = bits_mask(self.width);
        let mut garbler_bits = to_bits(blinded[1] & mask, self.width); // spam column
        garbler_bits.extend(to_bits(blinded[0] & mask, self.width)); // ham column
        Ok(garbler_bits)
    }

    /// Per-email phase, provider side: decrypts the blinded dot products and
    /// plays the garbler in the comparison circuit. The provider learns
    /// nothing about the email or the result.
    pub fn process_email<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        rng: &mut R,
    ) -> Result<()> {
        let blob = channel.recv()?;
        let garbler_bits = self.garbler_bits_for(&blob)?;

        // Online phase: draw ladder — local pool, then the fleet bank, then
        // inline garbling.
        let pre = self.draw_garbling(rng);
        self.yao.run_precomputed(
            channel,
            &self.circuit,
            pre,
            &garbler_bits,
            OutputMode::EvaluatorOnly,
        )?;
        Ok(())
    }

    /// Batched per-email phase: serves `count` rounds whose blinded dot
    /// products arrive as one coalesced frame (see
    /// [`pretzel_transport::pack_frames`]), drawing `count` pooled garblings
    /// in bulk and running one batched Yao exchange. Verdicts equal `count`
    /// sequential [`SpamProvider::process_email`] rounds. An empty batch
    /// exchanges no traffic, mirroring [`SpamClient::classify_batch`].
    pub fn process_email_batch<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        count: usize,
        rng: &mut R,
    ) -> Result<()> {
        if count == 0 {
            return Ok(());
        }
        let blobs = unpack_frames(&channel.recv()?).map_err(PretzelError::Transport)?;
        if blobs.len() != count {
            return Err(PretzelError::Protocol(format!(
                "batch announced {count} rounds but carried {}",
                blobs.len()
            )));
        }
        let inputs = blobs
            .iter()
            .map(|blob| self.garbler_bits_for(blob))
            .collect::<Result<Vec<_>>>()?;
        let pres: Vec<_> = (0..count).map(|_| self.draw_garbling(rng)).collect();
        self.yao.run_batch(
            channel,
            &self.circuit,
            pres,
            &inputs,
            OutputMode::EvaluatorOnly,
        )?;
        Ok(())
    }
}

impl Drop for SpamProvider {
    fn drop(&mut self) {
        if let Some((source, id)) = self.source.take() {
            source.release(&id);
        }
    }
}

/// Fleet plan for the comparison-circuit garbling reservoirs: one spec per
/// distinct circuit width the configured variants can produce (RLWE plain
/// bits for the Pretzel variants, Paillier slot bits for the Baseline), so
/// the bank's producers can pre-garble before any session's setup completes.
/// Garbling is key-independent — the artifact binds only to the circuit
/// shape — which is why these reservoirs sit at the root of the bank's
/// dependency DAG.
pub(crate) fn garbling_fleet_plan(config: &PretzelConfig) -> Vec<ReservoirSpec> {
    let mut widths = vec![
        config.rlwe_plain_bits as usize,
        config.paillier_slot_bits as usize,
    ];
    widths.sort_unstable();
    widths.dedup();
    widths
        .into_iter()
        .map(|width| {
            let circuit = spam_compare_circuit(width);
            let id = ReservoirId::garblings(circuit.fingerprint());
            ReservoirSpec::new(
                id,
                Arc::new(move |rng: &mut dyn RngCore| {
                    Box::new(PrecomputedGarbling::garble(&circuit, rng)) as bank::Artifact
                }),
            )
        })
        .collect()
}

impl SpamClient {
    /// Runs the setup phase as the client: derives joint randomness, receives
    /// and stores the encrypted model, and establishes the Yao session.
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        config: &PretzelConfig,
        variant: AheVariant,
        rng: &mut R,
    ) -> Result<Self> {
        let seed = joint_randomness_responder(channel, rng)?;
        let rows = parse_u64(&channel.recv()?)? as usize;
        let cols = parse_u64(&channel.recv()?)? as usize;
        if cols != 2 {
            return Err(PretzelError::Protocol(format!(
                "spam model must have 2 columns, got {cols}"
            )));
        }

        let (crypto, width) = match variant {
            AheVariant::Pretzel | AheVariant::PretzelNoOptimPack => {
                let params = config.rlwe_params();
                let pk = pretzel_rlwe::PublicKey::from_bytes(&params, &channel.recv()?)
                    .map_err(|e| PretzelError::Ahe(e.to_string()))?;
                let count = parse_u64(&channel.recv()?)? as usize;
                let blob = channel.recv()?;
                let ct_len = params.ciphertext_bytes();
                if blob.len() != count * ct_len {
                    return Err(PretzelError::Protocol("bad model blob size".into()));
                }
                let cts = blob
                    .chunks_exact(ct_len)
                    .map(|c| pretzel_rlwe::Ciphertext::from_bytes(&params, c))
                    .collect::<std::result::Result<Vec<_>, _>>()
                    .map_err(|e| PretzelError::Ahe(e.to_string()))?;
                let packing = if variant == AheVariant::Pretzel {
                    Packing::AcrossRow
                } else {
                    Packing::LegacyPerRow
                };
                let model =
                    rlwe_pack::EncryptedModel::from_parts(packing, cts, rows, cols, params.slots());
                (
                    ClientCrypto::Pretzel { pk, model },
                    config.rlwe_plain_bits as usize,
                )
            }
            AheVariant::Baseline => {
                let pk = pretzel_paillier::PublicKey::from_bytes(&channel.recv()?)
                    .map_err(|e| PretzelError::Ahe(e.to_string()))?;
                let count = parse_u64(&channel.recv()?)? as usize;
                let blob = channel.recv()?;
                let ct_len = pretzel_paillier::Ciphertext::serialized_len(pk.n_bits());
                if blob.len() != count * ct_len {
                    return Err(PretzelError::Protocol("bad model blob size".into()));
                }
                let cts: Vec<_> = blob
                    .chunks_exact(ct_len)
                    .map(pretzel_paillier::Ciphertext::from_bytes)
                    .collect();
                let pack = PaillierPackParams {
                    slot_bits: config.paillier_slot_bits,
                };
                let slots_per_ct = pack.slots_per_ct(&pk);
                let model = paillier_pack::PaillierEncryptedModel::from_parts(
                    pack,
                    cts,
                    rows,
                    cols,
                    slots_per_ct,
                );
                (
                    ClientCrypto::Baseline { pk, model },
                    config.paillier_slot_bits as usize,
                )
            }
        };

        let group = config.ot_group(&seed);
        let yao = YaoEvaluator::setup(channel, &group, rng)?;
        Ok(SpamClient {
            crypto,
            yao,
            circuit: spam_compare_circuit(width),
            width,
            bias_row: rows - 1,
            max_freq: config.max_frequency(),
            pool: pretzel_paillier::RandomnessPool::new(),
        })
    }

    /// Offline phase: precomputes the Paillier randomizers `target` future
    /// rounds will consume (Baseline variant; a no-op returning 0 for the
    /// Pretzel variant). Returns the number of randomizers computed.
    pub fn precompute<R: Rng + ?Sized>(&mut self, target: usize, rng: &mut R) -> usize {
        match &self.crypto {
            ClientCrypto::Baseline { pk, model } => {
                self.pool
                    .refill(pk, target.saturating_mul(model.result_ciphertexts()), rng)
            }
            ClientCrypto::Pretzel { .. } => 0,
        }
    }

    /// Rounds the offline pool can currently serve without inline
    /// exponentiations (always 0 for the Pretzel variant).
    pub fn pool_depth(&self) -> usize {
        match &self.crypto {
            ClientCrypto::Baseline { model, .. } => self.pool.len() / model.result_ciphertexts(),
            ClientCrypto::Pretzel { .. } => 0,
        }
    }

    /// Client-side storage consumed by the encrypted model in bytes — the
    /// quantity Figure 8 reports.
    pub fn model_storage_bytes(&self) -> usize {
        match &self.crypto {
            ClientCrypto::Pretzel { pk, model } => model.size_bytes(pk),
            ClientCrypto::Baseline { pk, model } => model.size_bytes(pk),
        }
    }

    /// Converts an email's sparse token counts into the protocol's
    /// (row, frequency) form, clamping frequencies and appending the bias row.
    pub fn protocol_features(&self, features: &SparseVector) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = features
            .iter()
            .filter(|&(i, _)| i < self.bias_row)
            .map(|(i, c)| (i, (c as u64).min(self.max_freq)))
            .collect();
        out.push((self.bias_row, 1));
        out
    }

    /// Computes one email's blinded dot-product ciphertext (drawing pooled
    /// Paillier randomizers when available) and the matching evaluator input
    /// bits, without touching the channel.
    fn blinded_round<R: Rng + ?Sized>(
        &mut self,
        features: &SparseVector,
        rng: &mut R,
    ) -> Result<(Vec<u8>, Vec<bool>)> {
        let sparse = self.protocol_features(features);
        let mask = bits_mask(self.width);
        let (blob, noise) = match &self.crypto {
            ClientCrypto::Pretzel { pk, model } => {
                let result = rlwe_pack::client_dot_product(pk, model, &sparse)?;
                let (blinded, noise) = rlwe_pack::blind(pk, &result[0], 2, rng);
                (blinded.to_bytes(), noise)
            }
            ClientCrypto::Baseline { pk, model } => {
                let result = paillier_pack::client_dot_product_pooled(
                    pk,
                    model,
                    &sparse,
                    &mut self.pool,
                    rng,
                )?;
                let (blinded, noise) = paillier_pack::blind(pk, model, &result[0], 2, rng);
                (blinded.to_bytes(pk), noise)
            }
        };
        // Evaluator inputs: noise for the spam column, then the ham column.
        let mut evaluator_bits = to_bits(noise[1] & mask, self.width);
        evaluator_bits.extend(to_bits(noise[0] & mask, self.width));
        Ok((blob, evaluator_bits))
    }

    /// Per-email phase, client side: returns `true` when the email is spam.
    /// The provider learns nothing (the output goes only to the client).
    pub fn classify<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        features: &SparseVector,
        rng: &mut R,
    ) -> Result<bool> {
        let (blob, evaluator_bits) = self.blinded_round(features, rng)?;
        channel.send(&blob)?;
        let out = self
            .yao
            .run(
                channel,
                &self.circuit,
                &evaluator_bits,
                OutputMode::EvaluatorOnly,
            )?
            .ok_or_else(|| PretzelError::Protocol("missing Yao output".into()))?;
        Ok(out[0])
    }

    /// Batched per-email phase: classifies every email in one coalesced
    /// exchange against a provider running
    /// [`SpamProvider::process_email_batch`] with the same count. All blinded
    /// dot products travel in one frame and the comparison circuits run as
    /// one batched Yao exchange; pooled randomizers are drawn in bulk while
    /// the blinded ciphertexts are prepared. Verdicts equal sequential
    /// [`SpamClient::classify`] calls.
    pub fn classify_batch<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        emails: &[&SparseVector],
        rng: &mut R,
    ) -> Result<Vec<bool>> {
        if emails.is_empty() {
            return Ok(Vec::new());
        }
        let mut blobs = Vec::with_capacity(emails.len());
        let mut inputs = Vec::with_capacity(emails.len());
        for features in emails {
            let (blob, evaluator_bits) = self.blinded_round(features, rng)?;
            blobs.push(blob);
            inputs.push(evaluator_bits);
        }
        channel.send(&pack_frames(&blobs))?;
        let outs =
            self.yao
                .run_batch(channel, &self.circuit, &inputs, OutputMode::EvaluatorOnly)?;
        outs.into_iter()
            .map(|out| {
                out.map(|bits| bits[0])
                    .ok_or_else(|| PretzelError::Protocol("missing Yao output".into()))
            })
            .collect()
    }
}

fn bits_mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// The registrable spam-filtering function module (wire tag 1).
pub struct SpamFunction;

impl SpamFunction {
    /// Handshake byte of the spam module.
    pub const WIRE_TAG: WireTag = 1;
}

impl FunctionModule for SpamFunction {
    fn wire_tag(&self) -> WireTag {
        Self::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "spam"
    }

    fn provider_setup(
        &self,
        mut channel: &mut dyn Channel,
        suite: &ProviderModelSuite,
        variant: AheVariant,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>> {
        Ok(Box::new(SpamProvider::setup(
            &mut channel,
            &suite.spam,
            &suite.config,
            variant,
            rng,
        )?))
    }

    fn client_setup(
        &self,
        mut channel: &mut dyn Channel,
        ctx: &ClientContext,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ClientModule>> {
        Ok(Box::new(SpamClient::setup(
            &mut channel,
            &ctx.config,
            ctx.variant,
            rng,
        )?))
    }

    fn fleet_plan(&self, suite: &ProviderModelSuite) -> Vec<ReservoirSpec> {
        garbling_fleet_plan(&suite.config)
    }
}

impl ProviderModule for SpamProvider {
    fn wire_tag(&self) -> WireTag {
        SpamFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "spam"
    }

    fn precompute(&mut self, budget: usize, rng: &mut dyn RngCore) -> usize {
        SpamProvider::precompute(self, budget, rng)
    }

    fn pool_depth(&self) -> usize {
        SpamProvider::pool_depth(self)
    }

    fn attach_source(&mut self, source: Arc<dyn PrecomputeSource>) {
        SpamProvider::attach_source(self, source);
    }

    fn pool_stats(&self) -> Vec<PoolStats> {
        vec![self.garbling_stats()]
    }

    fn process_round(
        &mut self,
        mut channel: &mut dyn Channel,
        rng: &mut dyn RngCore,
    ) -> Result<Option<usize>> {
        self.process_email(&mut channel, rng)?;
        Ok(None)
    }

    fn process_batch(
        &mut self,
        mut channel: &mut dyn Channel,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Option<usize>>> {
        self.process_email_batch(&mut channel, count, rng)?;
        Ok(vec![None; count])
    }
}

impl ClientModule for SpamClient {
    fn wire_tag(&self) -> WireTag {
        SpamFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "spam"
    }

    fn model_storage_bytes(&self) -> usize {
        SpamClient::model_storage_bytes(self)
    }

    fn precompute(&mut self, budget: usize, rng: &mut dyn RngCore) -> usize {
        SpamClient::precompute(self, budget, rng)
    }

    fn pool_depth(&self) -> usize {
        SpamClient::pool_depth(self)
    }

    fn process_round(
        &mut self,
        mut channel: &mut dyn Channel,
        payload: &EmailPayload,
        rng: &mut dyn RngCore,
    ) -> Result<Verdict> {
        match payload {
            EmailPayload::Tokens(features) => Ok(Verdict::Spam {
                is_spam: self.classify(&mut channel, features, rng)?,
            }),
            other => Err(crate::session::payload_mismatch("spam", other)),
        }
    }

    fn process_batch(
        &mut self,
        mut channel: &mut dyn Channel,
        payloads: &[EmailPayload],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Verdict>> {
        let emails = payloads
            .iter()
            .map(|p| match p {
                EmailPayload::Tokens(features) => Ok(features),
                other => Err(crate::session::payload_mismatch("spam", other)),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(self
            .classify_batch(&mut channel, &emails, rng)?
            .into_iter()
            .map(|is_spam| Verdict::Spam { is_spam })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_classifiers::nb::GrNbTrainer;
    use pretzel_classifiers::{LabeledExample, Trainer};
    use pretzel_transport::run_two_party;

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    /// 8-feature training corpus: features 0–3 are spammy, 4–7 are hammy.
    fn train_model() -> LinearModel {
        let mut corpus = Vec::new();
        for i in 0..20 {
            corpus.push(example(&[(i % 4, 2), ((i + 1) % 4, 1)], 1));
            corpus.push(example(&[(4 + i % 4, 2), (4 + (i + 1) % 4, 1)], 0));
        }
        GrNbTrainer::default().train(&corpus, 8, 2)
    }

    /// Like `run_spam_exchange`, but with both endpoints running an offline
    /// precompute phase sized `budget` before (and between) rounds. The
    /// verdicts must be identical to the inline path for every budget,
    /// including 0 (pure fallback) and budgets larger than the round count.
    fn run_spam_exchange_precomputed(variant: AheVariant, budget: usize) {
        let model = train_model();
        let config = PretzelConfig::test();
        let config_client = config.clone();
        let spam_email = SparseVector::from_pairs(vec![(0, 3), (1, 1), (2, 1)]);
        let ham_email = SparseVector::from_pairs(vec![(4, 2), (5, 2), (6, 1)]);

        let (provider_res, client_res) = run_two_party(
            move |chan| -> Result<usize> {
                let mut rng = rand::thread_rng();
                let mut provider = SpamProvider::setup(chan, &model, &config, variant, &mut rng)?;
                let garbled = provider.precompute(budget, &mut rng);
                assert_eq!(garbled, budget);
                assert_eq!(provider.pool_depth(), budget);
                provider.process_email(chan, &mut rng)?;
                provider.process_email(chan, &mut rng)?;
                assert_eq!(provider.pool_depth(), budget.saturating_sub(2));
                Ok(provider.precompute(budget, &mut rng))
            },
            move |chan| -> Result<(bool, bool)> {
                let mut rng = rand::thread_rng();
                let mut client = SpamClient::setup(chan, &config_client, variant, &mut rng)?;
                client.precompute(budget, &mut rng);
                if variant == AheVariant::Baseline {
                    assert_eq!(client.pool_depth(), budget);
                } else {
                    assert_eq!(client.pool_depth(), 0);
                }
                let spam_result = client.classify(chan, &spam_email, &mut rng)?;
                let ham_result = client.classify(chan, &ham_email, &mut rng)?;
                Ok((spam_result, ham_result))
            },
        );
        let topped_up = provider_res.unwrap();
        assert_eq!(topped_up, budget.min(2), "top-up replaces consumed rounds");
        let (spam_result, ham_result) = client_res.unwrap();
        assert!(spam_result, "{variant:?} budget {budget}: spam must flag");
        assert!(!ham_result, "{variant:?} budget {budget}: ham must pass");
    }

    #[test]
    fn precompute_budgets_do_not_change_verdicts() {
        for budget in [0usize, 1, 8] {
            run_spam_exchange_precomputed(AheVariant::Baseline, budget);
            run_spam_exchange_precomputed(AheVariant::Pretzel, budget);
        }
    }

    fn run_spam_exchange(variant: AheVariant) {
        let model = train_model();
        let model_for_provider = model.clone();
        let config = PretzelConfig::test();
        let config_client = config.clone();

        let spam_email = SparseVector::from_pairs(vec![(0, 3), (1, 1), (2, 1)]);
        let ham_email = SparseVector::from_pairs(vec![(4, 2), (5, 2), (6, 1)]);
        let spam_b = spam_email.clone();
        let ham_b = ham_email.clone();

        let (provider_res, client_res) = run_two_party(
            move |chan| -> Result<()> {
                let mut rng = rand::thread_rng();
                let mut provider =
                    SpamProvider::setup(chan, &model_for_provider, &config, variant, &mut rng)?;
                provider.process_email(chan, &mut rng)?;
                provider.process_email(chan, &mut rng)?;
                Ok(())
            },
            move |chan| -> Result<(bool, bool, usize)> {
                let mut rng = rand::thread_rng();
                let mut client = SpamClient::setup(chan, &config_client, variant, &mut rng)?;
                let storage = client.model_storage_bytes();
                let spam_result = client.classify(chan, &spam_b, &mut rng)?;
                let ham_result = client.classify(chan, &ham_b, &mut rng)?;
                Ok((spam_result, ham_result, storage))
            },
        );
        provider_res.unwrap();
        let (spam_result, ham_result, storage) = client_res.unwrap();
        assert!(
            spam_result,
            "{variant:?}: spammy email must classify as spam"
        );
        assert!(!ham_result, "{variant:?}: hammy email must classify as ham");
        assert!(storage > 0);

        // The private decision must agree with a non-private classification.
        let noprivate = crate::NoPrivProvider::new(model);
        assert!(noprivate.is_spam(&spam_email));
        assert!(!noprivate.is_spam(&ham_email));
    }

    /// One batched exchange must reproduce the sequential verdicts, with the
    /// garbling pool only partially covering the batch (bulk draw tops the
    /// shortfall up inline).
    fn run_spam_batch(variant: AheVariant) {
        let model = train_model();
        let config = PretzelConfig::test();
        let config_client = config.clone();
        let emails = [
            SparseVector::from_pairs(vec![(0, 3), (1, 1), (2, 1)]),
            SparseVector::from_pairs(vec![(4, 2), (5, 2), (6, 1)]),
            SparseVector::from_pairs(vec![(1, 2), (3, 2)]),
        ];

        let (provider_res, client_res) = run_two_party(
            move |chan| -> Result<()> {
                let mut rng = rand::thread_rng();
                let mut provider = SpamProvider::setup(chan, &model, &config, variant, &mut rng)?;
                provider.precompute(1, &mut rng);
                provider.process_email_batch(chan, 3, &mut rng)?;
                assert_eq!(provider.pool_depth(), 0, "the batch drained the pool");
                Ok(())
            },
            move |chan| -> Result<Vec<bool>> {
                let mut rng = rand::thread_rng();
                let mut client = SpamClient::setup(chan, &config_client, variant, &mut rng)?;
                client.precompute(2, &mut rng);
                let refs: Vec<&SparseVector> = emails.iter().collect();
                client.classify_batch(chan, &refs, &mut rng)
            },
        );
        provider_res.unwrap();
        assert_eq!(
            client_res.unwrap(),
            vec![true, false, true],
            "{variant:?}: batched verdicts must match the sequential ones"
        );
    }

    #[test]
    fn batched_classification_matches_sequential_verdicts() {
        run_spam_batch(AheVariant::Pretzel);
        run_spam_batch(AheVariant::Baseline);
    }

    #[test]
    fn pretzel_spam_end_to_end() {
        run_spam_exchange(AheVariant::Pretzel);
    }

    #[test]
    fn baseline_spam_end_to_end() {
        run_spam_exchange(AheVariant::Baseline);
    }

    #[test]
    fn no_optim_pack_spam_end_to_end_and_larger_model() {
        run_spam_exchange(AheVariant::PretzelNoOptimPack);
    }
}
