//! Parameter presets for the Pretzel protocols.
//!
//! The paper's deployment-scale parameters (1024-slot XPIR-BV ciphertexts,
//! 1024-bit Paillier, the RFC 3526 OT group, millions of model features) make
//! unit tests and CI-style runs needlessly slow, so every driver takes a
//! [`PretzelConfig`] and the harnesses expose a `--scale` switch between the
//! [`Scale::Test`] and [`Scale::Paper`] presets. The protocol code is
//! identical at both scales; only sizes change. EXPERIMENTS.md records which
//! scale produced the committed numbers.

use pretzel_gc::OtGroup;
use pretzel_rlwe::Params as RlweParams;

/// Which parameter preset to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small, fast parameters for unit/integration tests.
    Test,
    /// The paper's parameters (§6 "Method and setup", §4.1–§4.2).
    Paper,
}

/// All tunable parameters of the Pretzel function modules.
#[derive(Clone, Debug)]
pub struct PretzelConfig {
    /// XPIR-BV ring degree (slots per ciphertext, the paper's p).
    pub rlwe_degree: usize,
    /// XPIR-BV plaintext slot width in bits (the packing width b).
    pub rlwe_plain_bits: u32,
    /// Paillier modulus size in bits (Baseline; the paper's 256-byte
    /// ciphertexts correspond to 1024-bit moduli).
    pub paillier_bits: usize,
    /// Paillier packing slot width in bits (the Baseline's b).
    pub paillier_slot_bits: u32,
    /// Model parameter quantization width (the paper's b_in).
    pub weight_bits: u32,
    /// Feature frequency clamp width (the paper's f_in).
    pub freq_bits: u32,
    /// Number of candidate topics B′ for decomposed classification (§4.3).
    pub candidate_topics: usize,
    /// Bit width of the OT group's safe prime (test scale uses a small,
    /// insecure group; paper scale uses RFC 3526's 1536-bit group).
    pub ot_group_bits: usize,
}

impl PretzelConfig {
    /// Fast parameters for tests: 64-slot ciphertexts, 256-bit Paillier,
    /// a 64-bit OT group.
    pub fn test() -> Self {
        PretzelConfig {
            rlwe_degree: 64,
            rlwe_plain_bits: 30,
            paillier_bits: 256,
            paillier_slot_bits: 32,
            weight_bits: 10,
            freq_bits: 4,
            candidate_topics: 5,
            ot_group_bits: 64,
        }
    }

    /// The paper's parameters.
    pub fn paper() -> Self {
        PretzelConfig {
            rlwe_degree: 1024,
            rlwe_plain_bits: 30,
            paillier_bits: 1024,
            paillier_slot_bits: 32,
            weight_bits: 10,
            freq_bits: 4,
            candidate_topics: 20,
            ot_group_bits: 1536,
        }
    }

    /// Preset for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self::test(),
            Scale::Paper => Self::paper(),
        }
    }

    /// Builds the XPIR-BV parameters this configuration implies.
    pub fn rlwe_params(&self) -> RlweParams {
        RlweParams::new(self.rlwe_degree, self.rlwe_plain_bits)
    }

    /// Builds the OT group this configuration implies.
    ///
    /// `seed` is the jointly derived randomness from the commit–reveal
    /// exchange (§3.3 footnote 3). At paper scale the fixed RFC 3526 group is
    /// used and the seed is ignored; at test scale the (insecure, small) group
    /// is derived deterministically from the seed so that both parties agree
    /// on the same group without either choosing it unilaterally.
    pub fn ot_group(&self, seed: &[u8; 32]) -> OtGroup {
        if self.ot_group_bits >= 1536 {
            OtGroup::rfc3526_1536()
        } else {
            OtGroup::derive_test_group(self.ot_group_bits, seed)
        }
    }

    /// Maximum feature frequency the protocol will transmit.
    pub fn max_frequency(&self) -> u64 {
        (1u64 << self.freq_bits) - 1
    }
}

impl Default for PretzelConfig {
    fn default() -> Self {
        Self::test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_headline_numbers() {
        let paper = PretzelConfig::paper();
        assert_eq!(paper.rlwe_degree, 1024);
        assert_eq!(paper.rlwe_params().ciphertext_bytes(), 16 * 1024);
        assert_eq!(paper.paillier_bits, 1024);
        assert_eq!(paper.candidate_topics, 20);

        let test = PretzelConfig::test();
        assert!(test.rlwe_degree < paper.rlwe_degree);
        assert_eq!(
            PretzelConfig::for_scale(Scale::Test).rlwe_degree,
            test.rlwe_degree
        );
        assert_eq!(
            PretzelConfig::for_scale(Scale::Paper).rlwe_degree,
            paper.rlwe_degree
        );
    }

    #[test]
    fn max_frequency_tracks_freq_bits() {
        let cfg = PretzelConfig {
            freq_bits: 8,
            ..PretzelConfig::test()
        };
        assert_eq!(cfg.max_frequency(), 255);
    }

    #[test]
    fn test_ot_group_is_small() {
        let cfg = PretzelConfig::test();
        let _ = cfg.ot_group(&[7u8; 32]); // constructs without panicking
        let _ = cfg.rlwe_params();
    }

    #[test]
    fn both_parties_derive_the_same_test_group_from_the_same_seed() {
        let cfg = PretzelConfig::test();
        let seed = [42u8; 32];
        let a = cfg.ot_group(&seed);
        let b = cfg.ot_group(&seed);
        assert_eq!(a.prime(), b.prime());
        // A different seed gives a different group (with overwhelming
        // probability for 64-bit safe primes).
        let c = cfg.ot_group(&[43u8; 32]);
        assert_ne!(a.prime(), c.prime());
    }
}
