//! Joint randomness for AHE parameter generation (paper §3.3, footnote 3).
//!
//! Yao+GLLM assumes the AHE key generation is honest; Pretzel removes that
//! assumption by having both parties inject randomness into the public
//! parameters. We implement this as a commit-then-reveal seed exchange: each
//! party commits to a fresh 32-byte seed (SHA-256 commitment), both reveal,
//! and the XOR of the two seeds drives the derivation of the RLWE public
//! polynomial `a` (see [`pretzel_rlwe::expand_uniform_poly`]). Neither party
//! can bias the result without breaking the commitment.

use rand::Rng;

use pretzel_primitives::{ct_eq, sha256};
use pretzel_transport::Channel;

use crate::{PretzelError, Result};

/// Runs the commit–reveal exchange as the party that commits first.
pub fn joint_randomness_initiator<C: Channel>(
    channel: &mut C,
    rng: &mut (impl Rng + ?Sized),
) -> Result<[u8; 32]> {
    let my_seed: [u8; 32] = rng.gen();
    let commitment = sha256(&my_seed);
    channel.send(&commitment)?;
    let their_seed_raw = channel.recv()?;
    let their_seed: [u8; 32] = their_seed_raw
        .as_slice()
        .try_into()
        .map_err(|_| PretzelError::Protocol("peer seed must be 32 bytes".into()))?;
    channel.send(&my_seed)?;
    Ok(combine(&my_seed, &their_seed))
}

/// Runs the commit–reveal exchange as the responding party.
pub fn joint_randomness_responder<C: Channel>(
    channel: &mut C,
    rng: &mut (impl Rng + ?Sized),
) -> Result<[u8; 32]> {
    let commitment_raw = channel.recv()?;
    let commitment: [u8; 32] = commitment_raw
        .as_slice()
        .try_into()
        .map_err(|_| PretzelError::Protocol("commitment must be 32 bytes".into()))?;
    let my_seed: [u8; 32] = rng.gen();
    channel.send(&my_seed)?;
    let their_seed_raw = channel.recv()?;
    let their_seed: [u8; 32] = their_seed_raw
        .as_slice()
        .try_into()
        .map_err(|_| PretzelError::Protocol("peer seed must be 32 bytes".into()))?;
    // Verify the initiator's reveal against its commitment.
    if !ct_eq(&sha256(&their_seed), &commitment) {
        return Err(PretzelError::Protocol(
            "peer's revealed seed does not match its commitment".into(),
        ));
    }
    Ok(combine(&their_seed, &my_seed))
}

fn combine(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..32 {
        out[i] = a[i] ^ b[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_transport::run_two_party;

    #[test]
    fn both_parties_derive_the_same_seed() {
        let (a, b) = run_two_party(
            |chan| joint_randomness_initiator(chan, &mut rand::thread_rng()).unwrap(),
            |chan| joint_randomness_responder(chan, &mut rand::thread_rng()).unwrap(),
        );
        assert_eq!(a, b);
        assert_ne!(a, [0u8; 32]);
    }

    #[test]
    fn seeds_differ_across_runs() {
        let run = || {
            run_two_party(
                |chan| joint_randomness_initiator(chan, &mut rand::thread_rng()).unwrap(),
                |chan| joint_randomness_responder(chan, &mut rand::thread_rng()).unwrap(),
            )
            .0
        };
        assert_ne!(run(), run());
    }

    #[test]
    fn responder_rejects_a_false_reveal() {
        let (res, _) = run_two_party(
            |chan| -> Result<[u8; 32]> {
                // Malicious initiator: commits to one seed, reveals another.
                let seed = [1u8; 32];
                chan.send(&sha256(&seed))?;
                let _their = chan.recv()?;
                chan.send(&[2u8; 32])?;
                Ok(seed)
            },
            |chan| joint_randomness_responder(chan, &mut rand::thread_rng()),
        );
        let _ = res;
    }

    #[test]
    fn responder_error_on_false_reveal_is_protocol_error() {
        let (_, responder_result) = run_two_party(
            |chan| {
                let seed = [1u8; 32];
                chan.send(&sha256(&seed)).unwrap();
                let _ = chan.recv().unwrap();
                chan.send(&[2u8; 32]).unwrap();
            },
            |chan| joint_randomness_responder(chan, &mut rand::thread_rng()),
        );
        assert!(matches!(responder_result, Err(PretzelError::Protocol(_))));
    }
}
