//! Private topic extraction with decomposed classification (paper §4.3,
//! Figure 5, Figures 10–14).
//!
//! Roles are the mirror image of spam filtering: the **provider** obtains the
//! output (one topic index per email, Guarantee 3 of §4.4) and the client's
//! email — and even which candidate topics were considered — stays hidden.
//! Consequently the *client* garbles the argmax circuit and the *provider*
//! evaluates it, which is also what gives the client the paper's
//! plausible-deniability opt-out (§4.4 "Integrity").
//!
//! Decomposed classification (§4.3): the client first runs a public,
//! non-proprietary candidate model locally to map the email to B′ candidate
//! topics, then the secure protocol picks the best candidate using the
//! provider's proprietary model. Setting `candidates = None` disables the
//! decomposition (the "Pretzel (B′=B)" and Baseline configurations of
//! Figures 10 and 11).

use std::sync::Arc;

use rand::{Rng, RngCore};

use pretzel_classifiers::{LinearModel, SparseVector};
use pretzel_gc::{
    from_bits, to_bits, topic_argmax_circuit, Circuit, GarblingPool, OtGroup, OtSenderPrecomp,
    OutputMode, YaoEvaluator, YaoGarbler,
};
use pretzel_sdp::paillier_pack::{self, PaillierPackParams};
use pretzel_sdp::rlwe_pack::{self, Packing};
use pretzel_transport::{pack_frames, unpack_frames, Channel};

use crate::bank::{self, PrecomputeSource, ReservoirId, ReservoirSpec};
use crate::config::PretzelConfig;
use crate::registry::{ClientContext, ClientModule, FunctionModule, ProviderModule, WireTag};
use crate::session::{EmailPayload, ProviderModelSuite, Verdict};
use crate::setup::{joint_randomness_initiator, joint_randomness_responder};
use crate::spam::{quantize_to_matrix, AheVariant};
use crate::{parse_u64, u64_bytes, PretzelError, Result};

/// How many candidates the client prunes to before the secure step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateMode {
    /// Decomposed classification with B′ candidates (§4.3).
    Decomposed(usize),
    /// No decomposition: the secure argmax ranges over all B topics.
    Full,
}

impl CandidateMode {
    fn count(&self, categories: usize) -> usize {
        match self {
            CandidateMode::Decomposed(b_prime) => (*b_prime).min(categories),
            CandidateMode::Full => categories,
        }
    }
}

enum ProviderCrypto {
    Pretzel {
        sk: pretzel_rlwe::SecretKey,
    },
    Baseline {
        // Boxed: a Paillier secret key (CRT contexts included) dwarfs the
        // RLWE variant, and clippy::large_enum_variant fires otherwise.
        sk: Box<pretzel_paillier::SecretKey>,
        slot_bits: u32,
        slots_per_ct: usize,
    },
}

/// Provider endpoint of the topic-extraction module.
pub struct TopicProvider {
    crypto: ProviderCrypto,
    yao: YaoEvaluator,
    circuit: Circuit,
    width: usize,
    index_width: usize,
    candidates: usize,
    categories: usize,
}

enum ClientCrypto {
    Pretzel {
        pk: pretzel_rlwe::PublicKey,
        model: rlwe_pack::EncryptedModel,
    },
    Baseline {
        pk: pretzel_paillier::PublicKey,
        model: paillier_pack::PaillierEncryptedModel,
    },
}

/// Client endpoint of the topic-extraction module.
pub struct TopicClient {
    crypto: ClientCrypto,
    yao: YaoGarbler,
    circuit: Circuit,
    width: usize,
    index_width: usize,
    mode: CandidateMode,
    candidates: usize,
    categories: usize,
    bias_row: usize,
    max_freq: u64,
    /// Public, non-proprietary candidate model (required for decomposition).
    candidate_model: Option<LinearModel>,
    /// Offline-garbled argmax circuits awaiting their online rounds (the
    /// client garbles in this module — roles are mirrored vs. spam).
    ready: GarblingPool,
    /// Offline-precomputed Paillier randomizers (Baseline variant only).
    pool: pretzel_paillier::RandomnessPool,
}

impl TopicProvider {
    /// Setup phase, provider side: ship the encrypted proprietary topic model
    /// and establish the Yao session (as evaluator — the client garbles).
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        model: &LinearModel,
        config: &PretzelConfig,
        variant: AheVariant,
        mode: CandidateMode,
        rng: &mut R,
    ) -> Result<Self> {
        Self::setup_with_ot_base(channel, model, config, variant, mode, None, rng)
    }

    /// Like [`TopicProvider::setup`], but consuming a pre-generated base-OT
    /// sender artifact (the provider is the Yao *evaluator* here, and the
    /// IKNP extension receiver plays the base-OT sender). The artifact must
    /// have been generated for the session's OT group — only possible at
    /// paper scale, where the group is the fixed RFC 3526 one — and a
    /// mismatched or absent artifact falls back to inline base-OT
    /// generation, which produces an identical protocol transcript shape.
    pub fn setup_with_ot_base<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        model: &LinearModel,
        config: &PretzelConfig,
        variant: AheVariant,
        mode: CandidateMode,
        base: Option<OtSenderPrecomp>,
        rng: &mut R,
    ) -> Result<Self> {
        let (_, matrix) = quantize_to_matrix(model, config.weight_bits);
        let categories = matrix.cols();
        let candidates = mode.count(categories);
        let seed = joint_randomness_initiator(channel, rng)?;

        channel.send(&u64_bytes(matrix.rows() as u64))?;
        channel.send(&u64_bytes(matrix.cols() as u64))?;

        let (crypto, width) = match variant {
            AheVariant::Pretzel | AheVariant::PretzelNoOptimPack => {
                let params = config.rlwe_params();
                let (sk, pk) = pretzel_rlwe::keygen(&params, Some(&seed), rng);
                let packing = if variant == AheVariant::Pretzel {
                    Packing::AcrossRow
                } else {
                    Packing::LegacyPerRow
                };
                let enc = rlwe_pack::encrypt_model(&pk, &matrix, packing, rng)?;
                channel.send(&pk.to_bytes())?;
                channel.send(&u64_bytes(enc.ciphertext_count() as u64))?;
                let mut blob =
                    Vec::with_capacity(enc.ciphertext_count() * params.ciphertext_bytes());
                for ct in enc.ciphertexts() {
                    blob.extend_from_slice(&ct.to_bytes());
                }
                channel.send(&blob)?;
                (
                    ProviderCrypto::Pretzel { sk },
                    config.rlwe_plain_bits as usize,
                )
            }
            AheVariant::Baseline => {
                let sk = pretzel_paillier::keygen(config.paillier_bits, rng);
                let pk = sk.public().clone();
                let pack = PaillierPackParams {
                    slot_bits: config.paillier_slot_bits,
                };
                let slots_per_ct = pack.slots_per_ct(&pk);
                let enc = paillier_pack::encrypt_model(&pk, &matrix, pack, rng)?;
                channel.send(&pk.to_bytes())?;
                channel.send(&u64_bytes(enc.ciphertext_count() as u64))?;
                let ct_len = pretzel_paillier::Ciphertext::serialized_len(pk.n_bits());
                let mut blob = Vec::with_capacity(enc.ciphertext_count() * ct_len);
                for ct in enc.ciphertexts() {
                    blob.extend_from_slice(&ct.to_bytes(&pk));
                }
                channel.send(&blob)?;
                (
                    ProviderCrypto::Baseline {
                        sk: Box::new(sk),
                        slot_bits: config.paillier_slot_bits,
                        slots_per_ct,
                    },
                    config.paillier_slot_bits as usize,
                )
            }
        };

        let index_width = index_width_for(categories);
        let group = config.ot_group(&seed);
        let yao = match base.filter(|pre| pre.matches(&group)) {
            Some(pre) => YaoEvaluator::setup_with_base(channel, &group, pre, rng)?,
            None => YaoEvaluator::setup(channel, &group, rng)?,
        };
        Ok(TopicProvider {
            crypto,
            yao,
            circuit: topic_argmax_circuit(candidates, width, index_width),
            width,
            index_width,
            candidates,
            categories,
        })
    }

    /// Number of output bits the provider learns per processed email — the
    /// bound of Guarantee 3 (§4.4): at most `log B` bits, where `B` is the
    /// number of categories in the model.
    pub fn output_bits_per_email(&self) -> usize {
        self.index_width
    }

    /// Offline phase, provider side: a no-op returning 0. The topic provider
    /// evaluates (the client garbles, so the circuit pool lives in
    /// [`TopicClient`]), and its CRT decryption contexts are precomputed once
    /// at key generation.
    pub fn precompute<R: Rng + ?Sized>(&mut self, _target: usize, _rng: &mut R) -> usize {
        0
    }

    /// Always 0 — see [`TopicProvider::precompute`].
    pub fn pool_depth(&self) -> usize {
        0
    }

    /// Per-email phase, provider side: decrypts the blinded candidate dot
    /// products and evaluates the client-garbled argmax circuit, learning the
    /// chosen topic index (at most log B bits, Guarantee 3).
    pub fn process_email<C: Channel>(&mut self, channel: &mut C) -> Result<usize> {
        let blob = channel.recv()?;
        let evaluator_bits = self.evaluator_bits_for(&blob)?;
        let out = self
            .yao
            .run(
                channel,
                &self.circuit,
                &evaluator_bits,
                OutputMode::EvaluatorOnly,
            )?
            .ok_or_else(|| PretzelError::Protocol("missing Yao output".into()))?;
        Ok(from_bits(&out) as usize)
    }

    /// Batched per-email phase: serves `count` extraction rounds whose
    /// blinded candidate accumulators arrive as one coalesced frame, running
    /// one batched Yao evaluation. The returned indices equal `count`
    /// sequential [`TopicProvider::process_email`] rounds. An empty batch
    /// exchanges no traffic, mirroring [`TopicClient::extract_batch`].
    pub fn process_email_batch<C: Channel>(
        &mut self,
        channel: &mut C,
        count: usize,
    ) -> Result<Vec<usize>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let blobs = unpack_frames(&channel.recv()?).map_err(PretzelError::Transport)?;
        if blobs.len() != count {
            return Err(PretzelError::Protocol(format!(
                "batch announced {count} rounds but carried {}",
                blobs.len()
            )));
        }
        let inputs = blobs
            .iter()
            .map(|blob| self.evaluator_bits_for(blob))
            .collect::<Result<Vec<_>>>()?;
        let outs =
            self.yao
                .run_batch(channel, &self.circuit, &inputs, OutputMode::EvaluatorOnly)?;
        outs.into_iter()
            .map(|out| {
                out.map(|bits| from_bits(&bits) as usize)
                    .ok_or_else(|| PretzelError::Protocol("missing Yao output".into()))
            })
            .collect()
    }

    /// Decrypts one round's blinded candidate values into evaluator bits.
    fn evaluator_bits_for(&self, blob: &[u8]) -> Result<Vec<bool>> {
        let blinded: Vec<u64> = match &self.crypto {
            ProviderCrypto::Pretzel { sk } => {
                let params = sk.params();
                let ct_len = params.ciphertext_bytes();
                if !blob.len().is_multiple_of(ct_len) {
                    return Err(PretzelError::Protocol("bad per-email blob".into()));
                }
                let cts = blob
                    .chunks_exact(ct_len)
                    .map(|c| pretzel_rlwe::Ciphertext::from_bytes(params, c))
                    .collect::<std::result::Result<Vec<_>, _>>()
                    .map_err(|e| PretzelError::Ahe(e.to_string()))?;
                if cts.len() == self.candidates {
                    // Decomposed: one ciphertext per candidate, value in slot 0.
                    cts.iter().map(|ct| sk.decrypt_slots(ct)[0]).collect()
                } else {
                    // Full mode: accumulators carrying all B columns.
                    rlwe_pack::provider_decrypt_columns(sk, &cts, self.categories)
                }
            }
            ProviderCrypto::Baseline {
                sk,
                slot_bits,
                slots_per_ct,
            } => {
                let ct_len = pretzel_paillier::Ciphertext::serialized_len(sk.public().n_bits());
                if !blob.len().is_multiple_of(ct_len) {
                    return Err(PretzelError::Protocol("bad per-email blob".into()));
                }
                let cts: Vec<_> = blob
                    .chunks_exact(ct_len)
                    .map(pretzel_paillier::Ciphertext::from_bytes)
                    .collect();
                paillier_pack::provider_decrypt(
                    sk,
                    self.categories,
                    *slot_bits,
                    *slots_per_ct,
                    &cts,
                )?
            }
        };
        if blinded.len() < self.candidates {
            return Err(PretzelError::Protocol(format!(
                "expected at least {} blinded values, got {}",
                self.candidates,
                blinded.len()
            )));
        }
        let mask = bits_mask(self.width);
        let mut evaluator_bits = Vec::with_capacity(self.candidates * self.width);
        for &v in blinded.iter().take(self.candidates) {
            evaluator_bits.extend(to_bits(v & mask, self.width));
        }
        Ok(evaluator_bits)
    }
}

impl TopicClient {
    /// Setup phase, client side. `candidate_model` is the public,
    /// non-proprietary classifier used for the local pruning step; it is
    /// required when `mode` is [`CandidateMode::Decomposed`].
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        config: &PretzelConfig,
        variant: AheVariant,
        mode: CandidateMode,
        candidate_model: Option<LinearModel>,
        rng: &mut R,
    ) -> Result<Self> {
        if matches!(mode, CandidateMode::Decomposed(_)) && candidate_model.is_none() {
            return Err(PretzelError::Protocol(
                "decomposed classification requires a candidate model".into(),
            ));
        }
        let seed = joint_randomness_responder(channel, rng)?;
        let rows = parse_u64(&channel.recv()?)? as usize;
        let cols = parse_u64(&channel.recv()?)? as usize;
        let candidates = mode.count(cols);

        let (crypto, width) = match variant {
            AheVariant::Pretzel | AheVariant::PretzelNoOptimPack => {
                let params = config.rlwe_params();
                let pk = pretzel_rlwe::PublicKey::from_bytes(&params, &channel.recv()?)
                    .map_err(|e| PretzelError::Ahe(e.to_string()))?;
                let count = parse_u64(&channel.recv()?)? as usize;
                let blob = channel.recv()?;
                let ct_len = params.ciphertext_bytes();
                if blob.len() != count * ct_len {
                    return Err(PretzelError::Protocol("bad model blob size".into()));
                }
                let cts = blob
                    .chunks_exact(ct_len)
                    .map(|c| pretzel_rlwe::Ciphertext::from_bytes(&params, c))
                    .collect::<std::result::Result<Vec<_>, _>>()
                    .map_err(|e| PretzelError::Ahe(e.to_string()))?;
                let packing = if variant == AheVariant::Pretzel {
                    Packing::AcrossRow
                } else {
                    Packing::LegacyPerRow
                };
                let model =
                    rlwe_pack::EncryptedModel::from_parts(packing, cts, rows, cols, params.slots());
                (
                    ClientCrypto::Pretzel { pk, model },
                    config.rlwe_plain_bits as usize,
                )
            }
            AheVariant::Baseline => {
                let pk = pretzel_paillier::PublicKey::from_bytes(&channel.recv()?)
                    .map_err(|e| PretzelError::Ahe(e.to_string()))?;
                let count = parse_u64(&channel.recv()?)? as usize;
                let blob = channel.recv()?;
                let ct_len = pretzel_paillier::Ciphertext::serialized_len(pk.n_bits());
                if blob.len() != count * ct_len {
                    return Err(PretzelError::Protocol("bad model blob size".into()));
                }
                let cts: Vec<_> = blob
                    .chunks_exact(ct_len)
                    .map(pretzel_paillier::Ciphertext::from_bytes)
                    .collect();
                let pack = PaillierPackParams {
                    slot_bits: config.paillier_slot_bits,
                };
                let slots_per_ct = pack.slots_per_ct(&pk);
                let model = paillier_pack::PaillierEncryptedModel::from_parts(
                    pack,
                    cts,
                    rows,
                    cols,
                    slots_per_ct,
                );
                (
                    ClientCrypto::Baseline { pk, model },
                    config.paillier_slot_bits as usize,
                )
            }
        };

        let index_width = index_width_for(cols);
        let group = config.ot_group(&seed);
        let yao = YaoGarbler::setup(channel, &group, rng)?;
        Ok(TopicClient {
            crypto,
            yao,
            circuit: topic_argmax_circuit(candidates, width, index_width),
            width,
            index_width,
            mode,
            candidates,
            categories: cols,
            bias_row: rows - 1,
            max_freq: config.max_frequency(),
            candidate_model,
            ready: GarblingPool::new(),
            pool: pretzel_paillier::RandomnessPool::new(),
        })
    }

    /// Offline phase, client side: pre-garbles argmax circuits (the client
    /// is the garbler here) and, for the Baseline variant, precomputes the
    /// Paillier randomizers `target` future rounds will consume. Returns the
    /// number of work units (circuits + randomizers) produced.
    pub fn precompute<R: Rng + ?Sized>(&mut self, target: usize, rng: &mut R) -> usize {
        let mut added = self.ready.refill(&self.circuit, target, rng);
        if let ClientCrypto::Baseline { pk, model } = &self.crypto {
            added += self
                .pool
                .refill(pk, target.saturating_mul(model.result_ciphertexts()), rng);
        }
        added
    }

    /// Rounds the offline circuit pool can currently serve without inline
    /// garbling.
    pub fn pool_depth(&self) -> usize {
        self.ready.depth()
    }

    /// Client-side storage consumed by the encrypted model (Figure 12).
    pub fn model_storage_bytes(&self) -> usize {
        match &self.crypto {
            ClientCrypto::Pretzel { pk, model } => model.size_bytes(pk),
            ClientCrypto::Baseline { pk, model } => model.size_bytes(pk),
        }
    }

    /// The candidate topics the client would submit for an email — exposed
    /// for the Figure 14 analysis and tests.
    pub fn candidate_topics(&self, features: &SparseVector) -> Vec<usize> {
        match (&self.mode, &self.candidate_model) {
            (CandidateMode::Decomposed(_), Some(model)) => model.top_k(features, self.candidates),
            _ => (0..self.categories).collect(),
        }
    }

    fn protocol_features(&self, features: &SparseVector) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = features
            .iter()
            .filter(|&(i, _)| i < self.bias_row)
            .map(|(i, c)| (i, (c as u64).min(self.max_freq)))
            .collect();
        out.push((self.bias_row, 1));
        out
    }

    /// Per-email phase, client side: runs the secure topic extraction for one
    /// decrypted email. The client learns nothing; the provider learns the
    /// selected topic index. Returns the candidate set that was submitted
    /// (useful for tests and diagnostics — it is local information the client
    /// already knows).
    pub fn extract<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        features: &SparseVector,
        rng: &mut R,
    ) -> Result<Vec<usize>> {
        let (blob, candidate_cols, garbler_bits) = self.blinded_round(features, rng)?;
        channel.send(&blob)?;
        // Online phase: draw an offline-garbled circuit if one is pooled,
        // fall back to inline garbling otherwise.
        let pre = self.ready.draw(&self.circuit, rng);
        self.yao.run_precomputed(
            channel,
            &self.circuit,
            pre,
            &garbler_bits,
            OutputMode::EvaluatorOnly,
        )?;
        Ok(candidate_cols)
    }

    /// Batched per-email phase: runs one extraction round per email as a
    /// single coalesced exchange against a provider executing
    /// [`TopicProvider::process_email_batch`] with the same count. Every
    /// blinded accumulator travels in one frame, the client draws its pooled
    /// pre-garbled argmax circuits in bulk, and the argmax circuits run as
    /// one batched Yao exchange. Returns each email's submitted candidate
    /// set, exactly as sequential [`TopicClient::extract`] calls would.
    pub fn extract_batch<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        emails: &[&SparseVector],
        rng: &mut R,
    ) -> Result<Vec<Vec<usize>>> {
        if emails.is_empty() {
            return Ok(Vec::new());
        }
        let mut blobs = Vec::with_capacity(emails.len());
        let mut candidate_sets = Vec::with_capacity(emails.len());
        let mut inputs = Vec::with_capacity(emails.len());
        for features in emails {
            let (blob, candidate_cols, garbler_bits) = self.blinded_round(features, rng)?;
            blobs.push(blob);
            candidate_sets.push(candidate_cols);
            inputs.push(garbler_bits);
        }
        channel.send(&pack_frames(&blobs))?;
        let pres = self.ready.draw_many(&self.circuit, emails.len(), rng);
        self.yao.run_batch(
            channel,
            &self.circuit,
            pres,
            &inputs,
            OutputMode::EvaluatorOnly,
        )?;
        Ok(candidate_sets)
    }

    /// Computes one email's blinded candidate accumulators (drawing pooled
    /// Paillier randomizers when available), the candidate set, and the
    /// matching garbler input bits, without touching the channel.
    #[allow(clippy::type_complexity)]
    fn blinded_round<R: Rng + ?Sized>(
        &mut self,
        features: &SparseVector,
        rng: &mut R,
    ) -> Result<(Vec<u8>, Vec<usize>, Vec<bool>)> {
        let sparse = self.protocol_features(features);
        let candidate_cols = self.candidate_topics(features);
        let mask = bits_mask(self.width);

        // Dot products, candidate extraction (Pretzel decomposed) or full
        // accumulators, and blinding.
        let mut blob = Vec::new();
        let noises: Vec<u64> = match &self.crypto {
            ClientCrypto::Pretzel { pk, model } => {
                let accs = rlwe_pack::client_dot_product(pk, model, &sparse)?;
                match self.mode {
                    CandidateMode::Decomposed(_) => {
                        let extracted = rlwe_pack::extract_candidates(
                            pk,
                            &accs,
                            self.categories,
                            &candidate_cols,
                        )?;
                        let mut noises = Vec::with_capacity(extracted.len());
                        for ct in &extracted {
                            let (blinded, noise) = rlwe_pack::blind(pk, ct, 1, rng);
                            blob.extend_from_slice(&blinded.to_bytes());
                            noises.push(noise[0]);
                        }
                        noises
                    }
                    CandidateMode::Full => {
                        let slots = pk.params().slots();
                        let mut noises = vec![0u64; self.categories];
                        for (g, acc) in accs.iter().enumerate() {
                            let (blinded, noise) = rlwe_pack::blind(pk, acc, slots, rng);
                            blob.extend_from_slice(&blinded.to_bytes());
                            for (s, &n) in noise.iter().enumerate() {
                                let col = g * slots + s;
                                if col < self.categories {
                                    noises[col] = n;
                                }
                            }
                        }
                        noises
                    }
                }
            }
            ClientCrypto::Baseline { pk, model } => {
                let accs = paillier_pack::client_dot_product_pooled(
                    pk,
                    model,
                    &sparse,
                    &mut self.pool,
                    rng,
                )?;
                let slots = model.slots_per_ct();
                let mut noises = vec![0u64; self.categories];
                for (g, acc) in accs.iter().enumerate() {
                    let (blinded, noise) = paillier_pack::blind(pk, model, acc, slots, rng);
                    blob.extend_from_slice(&blinded.to_bytes(pk));
                    for (s, &n) in noise.iter().enumerate() {
                        let col = g * slots + s;
                        if col < self.categories {
                            noises[col] = n;
                        }
                    }
                }
                noises
            }
        };

        // Garbler inputs: candidate indices, then per-candidate noises.
        let mut garbler_bits =
            Vec::with_capacity(self.candidates * (self.index_width + self.width));
        for &col in &candidate_cols {
            garbler_bits.extend(to_bits(col as u64, self.index_width));
        }
        for (j, &col) in candidate_cols.iter().enumerate() {
            let noise = match self.mode {
                CandidateMode::Decomposed(_) => noises[j],
                CandidateMode::Full => noises[col],
            };
            garbler_bits.extend(to_bits(noise & mask, self.width));
        }
        Ok((blob, candidate_cols, garbler_bits))
    }
}

/// Bit width needed to represent a topic index in `0..categories`.
pub fn index_width_for(categories: usize) -> usize {
    (usize::BITS - (categories.max(2) - 1).leading_zeros()) as usize
}

/// Offline helper for Figure 14: the fraction of `test` documents whose
/// reference label (per `reference_model`) appears among the top-B′
/// candidates of `candidate_model`.
pub fn candidate_hit_rate(
    candidate_model: &LinearModel,
    reference_model: &LinearModel,
    test: &[pretzel_classifiers::LabeledExample],
    b_prime: usize,
) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let hits = test
        .iter()
        .filter(|ex| {
            let reference = reference_model.predict(&ex.features);
            candidate_model
                .top_k(&ex.features, b_prime)
                .contains(&reference)
        })
        .count();
    hits as f64 / test.len() as f64
}

fn bits_mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// The registrable topic-extraction function module (wire tag 2).
pub struct TopicFunction;

impl TopicFunction {
    /// Handshake byte of the topic module.
    pub const WIRE_TAG: WireTag = 2;
}

impl FunctionModule for TopicFunction {
    fn wire_tag(&self) -> WireTag {
        Self::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "topic"
    }

    fn provider_setup(
        &self,
        mut channel: &mut dyn Channel,
        suite: &ProviderModelSuite,
        variant: AheVariant,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>> {
        Ok(Box::new(TopicProvider::setup(
            &mut channel,
            &suite.topic,
            &suite.config,
            variant,
            suite.topic_mode,
            rng,
        )?))
    }

    fn client_setup(
        &self,
        mut channel: &mut dyn Channel,
        ctx: &ClientContext,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ClientModule>> {
        Ok(Box::new(TopicClient::setup(
            &mut channel,
            &ctx.config,
            ctx.variant,
            ctx.topic_mode,
            ctx.candidate_model.clone(),
            rng,
        )?))
    }

    fn fleet_plan(&self, suite: &ProviderModelSuite) -> Vec<ReservoirSpec> {
        base_ot_fleet_plan(&suite.config)
    }

    fn provider_setup_with_source(
        &self,
        mut channel: &mut dyn Channel,
        suite: &ProviderModelSuite,
        variant: AheVariant,
        source: &Arc<dyn PrecomputeSource>,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>> {
        let base = draw_base_ot(source, &suite.config);
        Ok(Box::new(TopicProvider::setup_with_ot_base(
            &mut channel,
            &suite.topic,
            &suite.config,
            variant,
            suite.topic_mode,
            base,
            rng,
        )?))
    }
}

/// Fleet plan for the base-OT sender reservoir. Only meaningful at paper
/// scale: test-scale OT groups are derived from each session's joint
/// randomness, so no fleet-wide artifact can be generated ahead of a session.
pub(crate) fn base_ot_fleet_plan(config: &PretzelConfig) -> Vec<ReservoirSpec> {
    if config.ot_group_bits < 1536 {
        return Vec::new();
    }
    let group = OtGroup::rfc3526_1536();
    let id = ReservoirId::base_ots(group.fingerprint());
    vec![ReservoirSpec::new(
        id,
        Arc::new(move |rng: &mut dyn RngCore| {
            Box::new(OtSenderPrecomp::generate(&group, rng)) as bank::Artifact
        }),
    )]
}

/// Draws one pre-generated base-OT sender artifact for the fixed RFC 3526
/// group, counting a bank fallback when the reservoir is dry. Returns `None`
/// (inline generation) at test scale, where the group is session-derived.
fn draw_base_ot(
    source: &Arc<dyn PrecomputeSource>,
    config: &PretzelConfig,
) -> Option<OtSenderPrecomp> {
    if config.ot_group_bits < 1536 {
        return None;
    }
    let group = OtGroup::rfc3526_1536();
    let id = ReservoirId::base_ots(group.fingerprint());
    match source
        .draw(&id)
        .and_then(|artifact| artifact.downcast::<OtSenderPrecomp>().ok())
    {
        Some(pre) if pre.matches(&group) => Some(*pre),
        _ => {
            source.record_fallback(&id);
            None
        }
    }
}

impl ProviderModule for TopicProvider {
    fn wire_tag(&self) -> WireTag {
        TopicFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "topic"
    }

    fn precompute(&mut self, budget: usize, rng: &mut dyn RngCore) -> usize {
        TopicProvider::precompute(self, budget, rng)
    }

    fn pool_depth(&self) -> usize {
        TopicProvider::pool_depth(self)
    }

    fn process_round(
        &mut self,
        mut channel: &mut dyn Channel,
        _rng: &mut dyn RngCore,
    ) -> Result<Option<usize>> {
        Ok(Some(self.process_email(&mut channel)?))
    }

    fn process_batch(
        &mut self,
        mut channel: &mut dyn Channel,
        count: usize,
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<Option<usize>>> {
        Ok(self
            .process_email_batch(&mut channel, count)?
            .into_iter()
            .map(Some)
            .collect())
    }
}

impl ClientModule for TopicClient {
    fn wire_tag(&self) -> WireTag {
        TopicFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "topic"
    }

    fn model_storage_bytes(&self) -> usize {
        TopicClient::model_storage_bytes(self)
    }

    fn precompute(&mut self, budget: usize, rng: &mut dyn RngCore) -> usize {
        TopicClient::precompute(self, budget, rng)
    }

    fn pool_depth(&self) -> usize {
        TopicClient::pool_depth(self)
    }

    fn process_round(
        &mut self,
        mut channel: &mut dyn Channel,
        payload: &EmailPayload,
        rng: &mut dyn RngCore,
    ) -> Result<Verdict> {
        match payload {
            EmailPayload::Tokens(features) => Ok(Verdict::Topic {
                candidates: self.extract(&mut channel, features, rng)?,
            }),
            other => Err(crate::session::payload_mismatch("topic", other)),
        }
    }

    fn process_batch(
        &mut self,
        mut channel: &mut dyn Channel,
        payloads: &[EmailPayload],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Verdict>> {
        let emails = payloads
            .iter()
            .map(|p| match p {
                EmailPayload::Tokens(features) => Ok(features),
                other => Err(crate::session::payload_mismatch("topic", other)),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(self
            .extract_batch(&mut channel, &emails, rng)?
            .into_iter()
            .map(|candidates| Verdict::Topic { candidates })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_classifiers::nb::MultinomialNbTrainer;
    use pretzel_classifiers::{LabeledExample, Trainer};
    use pretzel_transport::run_two_party;

    fn example(pairs: &[(usize, u32)], label: usize) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(pairs.to_vec()),
            label,
        }
    }

    /// Six topics over 24 features; topic t owns features 4t..4t+4.
    fn topic_corpus() -> Vec<LabeledExample> {
        let mut corpus = Vec::new();
        for round in 0..10u32 {
            for topic in 0..6usize {
                let base = topic * 4;
                corpus.push(example(
                    &[
                        (base, 2 + round % 2),
                        (base + 1, 1),
                        (base + 2 + (round as usize % 2), 1),
                    ],
                    topic,
                ));
            }
        }
        corpus
    }

    fn run_topic_exchange(variant: AheVariant, mode: CandidateMode) {
        let corpus = topic_corpus();
        let model = MultinomialNbTrainer::default().train(&corpus, 24, 6);
        // The public candidate model is trained on a small subset (as §4.3
        // envisions); here the first third of the corpus.
        let candidate_model =
            MultinomialNbTrainer::default().train(&corpus[..corpus.len() / 3], 24, 6);
        let provider_model = model.clone();
        let config = PretzelConfig::test();
        let config_client = config.clone();

        // Emails clearly about topic 2 and topic 5.
        let email_t2 = SparseVector::from_pairs(vec![(8, 3), (9, 2), (10, 1)]);
        let email_t5 = SparseVector::from_pairs(vec![(20, 2), (21, 2), (23, 1)]);
        let email_t2_b = email_t2.clone();
        let email_t5_b = email_t5.clone();

        let (provider_res, client_res) = run_two_party(
            move |chan| -> Result<Vec<usize>> {
                let mut rng = rand::thread_rng();
                let mut provider =
                    TopicProvider::setup(chan, &provider_model, &config, variant, mode, &mut rng)?;
                let t1 = provider.process_email(chan)?;
                let t2 = provider.process_email(chan)?;
                Ok(vec![t1, t2])
            },
            move |chan| -> Result<(Vec<usize>, Vec<usize>)> {
                let mut rng = rand::thread_rng();
                let mut client = TopicClient::setup(
                    chan,
                    &config_client,
                    variant,
                    mode,
                    Some(candidate_model),
                    &mut rng,
                )?;
                let c1 = client.extract(chan, &email_t2_b, &mut rng)?;
                let c2 = client.extract(chan, &email_t5_b, &mut rng)?;
                Ok((c1, c2))
            },
        );
        let topics = provider_res.unwrap();
        let (cands1, cands2) = client_res.unwrap();
        assert_eq!(topics[0], 2, "{variant:?} {mode:?}: topic of email 1");
        assert_eq!(topics[1], 5, "{variant:?} {mode:?}: topic of email 2");
        // The provider's answer must be among the candidates the client sent.
        assert!(cands1.contains(&topics[0]));
        assert!(cands2.contains(&topics[1]));

        // Cross-check against the non-private reference.
        let noprivate = crate::NoPrivProvider::new(model);
        assert_eq!(noprivate.classify(&email_t2), 2);
        assert_eq!(noprivate.classify(&email_t5), 5);
    }

    #[test]
    fn pretzel_decomposed_topic_extraction() {
        run_topic_exchange(AheVariant::Pretzel, CandidateMode::Decomposed(3));
    }

    /// The offline circuit pool lives client-side in this module; warming it
    /// must not change the topic the provider learns.
    #[test]
    fn precomputed_topic_extraction_matches_inline() {
        let corpus = topic_corpus();
        let model = MultinomialNbTrainer::default().train(&corpus, 24, 6);
        let provider_model = model.clone();
        let config = PretzelConfig::test();
        let config_client = config.clone();
        let email = SparseVector::from_pairs(vec![(8, 3), (9, 2), (10, 1)]);

        let (provider_res, client_res) = run_two_party(
            move |chan| -> Result<Vec<usize>> {
                let mut rng = rand::thread_rng();
                let mut provider = TopicProvider::setup(
                    chan,
                    &provider_model,
                    &config,
                    AheVariant::Baseline,
                    CandidateMode::Full,
                    &mut rng,
                )?;
                assert_eq!(provider.precompute(4, &mut rng), 0, "evaluator side");
                assert_eq!(provider.pool_depth(), 0);
                let t1 = provider.process_email(chan)?;
                let t2 = provider.process_email(chan)?;
                Ok(vec![t1, t2])
            },
            move |chan| -> Result<()> {
                let mut rng = rand::thread_rng();
                let mut client = TopicClient::setup(
                    chan,
                    &config_client,
                    AheVariant::Baseline,
                    CandidateMode::Full,
                    None,
                    &mut rng,
                )?;
                // Warm one round's worth: round 1 draws from the pool,
                // round 2 hits the dry-pool inline fallback.
                assert!(client.precompute(1, &mut rng) > 0);
                assert_eq!(client.pool_depth(), 1);
                client.extract(chan, &email, &mut rng)?;
                assert_eq!(client.pool_depth(), 0);
                client.extract(chan, &email, &mut rng)?;
                Ok(())
            },
        );
        client_res.unwrap();
        assert_eq!(provider_res.unwrap(), vec![2, 2]);
    }

    #[test]
    fn pretzel_full_topic_extraction() {
        run_topic_exchange(AheVariant::Pretzel, CandidateMode::Full);
    }

    #[test]
    fn baseline_full_topic_extraction() {
        run_topic_exchange(AheVariant::Baseline, CandidateMode::Full);
    }

    /// A batched extraction must hand the provider the same topic indices as
    /// sequential rounds, with the client's circuit pool only partially
    /// covering the batch.
    #[test]
    fn batched_extraction_matches_sequential_topics() {
        let corpus = topic_corpus();
        let model = MultinomialNbTrainer::default().train(&corpus, 24, 6);
        let provider_model = model.clone();
        let config = PretzelConfig::test();
        let config_client = config.clone();
        let emails = [
            SparseVector::from_pairs(vec![(8, 3), (9, 2), (10, 1)]),
            SparseVector::from_pairs(vec![(20, 2), (21, 2), (23, 1)]),
            SparseVector::from_pairs(vec![(0, 2), (1, 1), (2, 1)]),
        ];

        let (provider_res, client_res) = run_two_party(
            move |chan| -> Result<Vec<usize>> {
                let mut rng = rand::thread_rng();
                let mut provider = TopicProvider::setup(
                    chan,
                    &provider_model,
                    &config,
                    AheVariant::Pretzel,
                    CandidateMode::Full,
                    &mut rng,
                )?;
                provider.process_email_batch(chan, 3)
            },
            move |chan| -> Result<Vec<Vec<usize>>> {
                let mut rng = rand::thread_rng();
                let mut client = TopicClient::setup(
                    chan,
                    &config_client,
                    AheVariant::Pretzel,
                    CandidateMode::Full,
                    None,
                    &mut rng,
                )?;
                client.precompute(1, &mut rng);
                let refs: Vec<&SparseVector> = emails.iter().collect();
                let out = client.extract_batch(chan, &refs, &mut rng)?;
                assert_eq!(client.pool_depth(), 0, "bulk draw drained the pool");
                Ok(out)
            },
        );
        let topics = provider_res.unwrap();
        let candidate_sets = client_res.unwrap();
        assert_eq!(topics, vec![2, 5, 0]);
        for (topic, candidates) in topics.iter().zip(&candidate_sets) {
            assert!(candidates.contains(topic));
        }
    }

    #[test]
    fn index_width_covers_the_category_space() {
        assert_eq!(index_width_for(2), 1);
        assert_eq!(index_width_for(128), 7);
        assert_eq!(index_width_for(129), 8);
        assert_eq!(index_width_for(2048), 11);
        assert_eq!(index_width_for(2208), 12);
    }

    #[test]
    fn candidate_hit_rate_improves_with_more_candidates() {
        let corpus = topic_corpus();
        let full = MultinomialNbTrainer::default().train(&corpus, 24, 6);
        let weak = MultinomialNbTrainer::default().train(&corpus[..12], 24, 6);
        let r1 = candidate_hit_rate(&weak, &full, &corpus, 1);
        let r3 = candidate_hit_rate(&weak, &full, &corpus, 3);
        let r6 = candidate_hit_rate(&weak, &full, &corpus, 6);
        assert!(r1 <= r3 && r3 <= r6);
        assert!(
            (r6 - 1.0).abs() < 1e-9,
            "B'=B always contains the reference topic"
        );
    }
}
