//! Function-module registry: the extension point for provider-side
//! functions over encrypted email.
//!
//! The paper's core claim is that provider functions — spam filtering, topic
//! extraction, virus scanning, keyword search — are *composable*: each is an
//! instance of one `setup → precompute(budget) → process_round` lifecycle.
//! This module makes that shape first-class instead of an enum: a
//! [`FunctionModule`] describes one protocol (its [`WireTag`] handshake byte,
//! display name, and how to set up each endpoint), and a
//! [`ProtocolRegistry`] maps wire tags to modules. The
//! [`crate::session::ProviderSession`] / [`crate::session::ClientSession`]
//! wrappers and the `pretzel_server` mailroom dispatch purely through the
//! registry, so adding a fifth function is a [`ProtocolRegistry::register`]
//! call — no core edits (see `examples/mailroom.rs`, which registers an
//! attachment-analytics module from outside this crate).
//!
//! Live endpoints implement [`ProviderModule`] / [`ClientModule`]: the
//! object-safe per-session traits carrying the offline phase
//! (`precompute`/`pool_depth`), the online phase (`process_round`), and the
//! **batched** online phase (`process_batch`, defaulting to a per-round
//! loop; the built-in modules override it to coalesce frames and draw
//! pooled randomizers in bulk — see `docs/ARCHITECTURE.md`).

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::RngCore;

use pretzel_classifiers::LinearModel;
use pretzel_transport::wire::Capabilities;
use pretzel_transport::Channel;

use crate::bank::{PoolStats, PrecomputeSource, ReservoirSpec};
use crate::config::PretzelConfig;
use crate::session::{EmailPayload, ProviderModelSuite, Verdict};
use crate::spam::AheVariant;
use crate::topic::CandidateMode;
use crate::{PretzelError, Result};

/// Wire encoding of a function module in session handshakes: the first byte
/// a client sends. Tag `0` is reserved (it doubles as "no protocol" in
/// control frames) and can never be registered.
pub type WireTag = u8;

/// Client-side parameters for a session's setup phase. Must agree with the
/// provider's configuration — the parameter preset fixes ciphertext shapes,
/// and for topic sessions the candidate mode fixes the argmax circuit.
#[derive(Clone, Debug)]
pub struct ClientContext {
    /// Protocol parameter preset (must match the provider's).
    pub config: PretzelConfig,
    /// Which AHE cryptosystem/packing to use (modules that are
    /// single-backend, like search, carry but ignore it).
    pub variant: AheVariant,
    /// Candidate pruning mode for topic sessions (ignored otherwise).
    pub topic_mode: CandidateMode,
    /// Public candidate model, required for decomposed topic sessions.
    pub candidate_model: Option<LinearModel>,
}

impl ClientContext {
    /// Context with the given preset and every other knob at its default
    /// (Pretzel AHE variant, full candidate mode, no candidate model).
    pub fn new(config: PretzelConfig) -> Self {
        ClientContext {
            config,
            variant: AheVariant::Pretzel,
            topic_mode: CandidateMode::Full,
            candidate_model: None,
        }
    }
}

/// Provider endpoint of one live session: the state produced by a module's
/// setup phase, driven round by round (or batch by batch) by the serving
/// layer.
pub trait ProviderModule: Send {
    /// The handshake byte of the module this session runs.
    fn wire_tag(&self) -> WireTag;

    /// Human-readable module name (per-kind reports, diagnostics).
    fn display_name(&self) -> &'static str;

    /// Offline phase: tops this session's precomputation pools up to
    /// `budget` future rounds, returning the number of work units produced
    /// (0 when the module has no provider-side offline work).
    ///
    /// With a [`PrecomputeSource`] attached this inline path is a legacy
    /// shim — the bank's background producers do the offline work and the
    /// module draws per round instead.
    fn precompute(&mut self, budget: usize, rng: &mut dyn RngCore) -> usize;

    /// Rounds the offline pools can currently serve without inline work.
    fn pool_depth(&self) -> usize;

    /// Hands the module a [`PrecomputeSource`] to draw artifacts from. The
    /// module registers the reservoirs it consumes (releasing them on drop)
    /// and prefers bank draws over its local pool refills from then on. The
    /// default ignores the source — modules without bankable artifacts stay
    /// correct unchanged.
    fn attach_source(&mut self, source: Arc<dyn PrecomputeSource>) {
        let _ = source;
    }

    /// Per-kind observability for this session's local pools, keyed by the
    /// same kind names as the bank's reservoirs ([`PoolStats`]). The default
    /// (no pools) reports nothing; [`ProviderModule::pool_depth`] remains
    /// the aggregate of these depths for modules that override both.
    fn pool_stats(&self) -> Vec<PoolStats> {
        Vec::new()
    }

    /// Runs one per-email round. Returns a per-round provider output for
    /// modules whose result goes to the provider (the topic index,
    /// Guarantee 3) and `None` otherwise.
    fn process_round(
        &mut self,
        channel: &mut dyn Channel,
        rng: &mut dyn RngCore,
    ) -> Result<Option<usize>>;

    /// Runs `count` rounds as one batch. The default processes them one at
    /// a time; modules override it to coalesce the batch's frames (see
    /// `pretzel_transport::batch`) and draw pooled precomputations in bulk.
    /// Outputs must equal `count` sequential [`ProviderModule::process_round`]
    /// calls.
    fn process_batch(
        &mut self,
        channel: &mut dyn Channel,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Option<usize>>> {
        (0..count)
            .map(|_| self.process_round(channel, rng))
            .collect()
    }
}

/// Client endpoint of one live session, mirroring [`ProviderModule`].
pub trait ClientModule: Send {
    /// The handshake byte of the module this session runs.
    fn wire_tag(&self) -> WireTag;

    /// Human-readable module name.
    fn display_name(&self) -> &'static str;

    /// Client-side storage consumed by the session state, in bytes (the
    /// encrypted model for classification modules, key material for search).
    fn model_storage_bytes(&self) -> usize;

    /// Offline phase: tops the client-side pools up to `budget` future
    /// rounds, returning the number of work units produced.
    fn precompute(&mut self, budget: usize, rng: &mut dyn RngCore) -> usize;

    /// Rounds the offline pools can currently serve without inline work.
    fn pool_depth(&self) -> usize;

    /// Runs one per-email round with `payload`, which must match the shapes
    /// this module accepts.
    fn process_round(
        &mut self,
        channel: &mut dyn Channel,
        payload: &EmailPayload,
        rng: &mut dyn RngCore,
    ) -> Result<Verdict>;

    /// Runs one batch of rounds against a provider executing
    /// [`ProviderModule::process_batch`] with the same count. The default
    /// processes payloads one at a time; overrides coalesce frames. Verdicts
    /// must equal sequential [`ClientModule::process_round`] calls.
    fn process_batch(
        &mut self,
        channel: &mut dyn Channel,
        payloads: &[EmailPayload],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Verdict>> {
        payloads
            .iter()
            .map(|p| self.process_round(channel, p, rng))
            .collect()
    }
}

/// One registrable function over encrypted email: a factory for the two
/// endpoints of its protocol, keyed by wire tag.
///
/// Implementations are stateless descriptors (the per-session state lives in
/// the [`ProviderModule`] / [`ClientModule`] values their setup methods
/// return), shared read-only across every worker of a serving layer.
pub trait FunctionModule: Send + Sync {
    /// Handshake byte identifying this module. Must be unique within a
    /// registry and non-zero.
    fn wire_tag(&self) -> WireTag;

    /// Human-readable module name (stable; used in reports and displays).
    fn display_name(&self) -> &'static str;

    /// Capabilities this module cannot serve a session without. A v2
    /// handshake that does not offer them is refused
    /// (`HandshakeError::CapabilityRefused`); since v1 sessions carry no
    /// capability bits, a module with required capabilities is effectively
    /// v2-only. The default — no requirements — keeps every module
    /// servable by legacy v1 peers.
    fn required_capabilities(&self) -> Capabilities {
        Capabilities::NONE
    }

    /// Optional capabilities this module knows how to exploit when the peer
    /// negotiates them. The default declares
    /// [`Capabilities::ROUND_BATCH`]: every module batches (at worst via
    /// the default per-round `process_batch` loop), and sessions without
    /// the bit transparently degrade to sequential rounds.
    fn optional_capabilities(&self) -> Capabilities {
        Capabilities::ROUND_BATCH
    }

    /// Runs the provider half of the setup phase against the peer on
    /// `channel`, returning the reusable per-session provider state.
    fn provider_setup(
        &self,
        channel: &mut dyn Channel,
        suite: &ProviderModelSuite,
        variant: AheVariant,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>>;

    /// The key-independent reservoirs this module wants a fleet-wide
    /// [`crate::bank::PrecomputeBank`] to keep stocked (garbled tables for
    /// its circuit shapes, base-OT sender state for its fixed group). The
    /// serving layer registers these once at bank startup, before any
    /// session exists. The default — no shared artifacts — keeps external
    /// modules working unchanged.
    fn fleet_plan(&self, suite: &ProviderModelSuite) -> Vec<ReservoirSpec> {
        let _ = suite;
        Vec::new()
    }

    /// [`FunctionModule::provider_setup`] with a [`PrecomputeSource`]
    /// available *during* setup, for modules whose setup phase itself can
    /// consume banked artifacts (e.g. base-OT sender state). The default
    /// runs the plain setup and then attaches the source to the resulting
    /// module, so every module gets the draw handle without overriding.
    fn provider_setup_with_source(
        &self,
        channel: &mut dyn Channel,
        suite: &ProviderModelSuite,
        variant: AheVariant,
        source: &Arc<dyn PrecomputeSource>,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>> {
        let mut module = self.provider_setup(channel, suite, variant, rng)?;
        module.attach_source(Arc::clone(source));
        Ok(module)
    }

    /// Runs the client half of the setup phase, returning the reusable
    /// per-session client state.
    fn client_setup(
        &self,
        channel: &mut dyn Channel,
        ctx: &ClientContext,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ClientModule>>;
}

/// The set of function modules one deployment serves, keyed by wire tag.
///
/// This is the single source of truth for tag ↔ module resolution: session
/// handshakes decode through [`ProtocolRegistry::from_wire_tag`], and
/// per-kind reporting iterates [`ProtocolRegistry::modules`] in wire-tag
/// order. Unknown tags and duplicate registrations are both
/// [`PretzelError::Protocol`] errors — nothing can silently drift.
#[derive(Clone, Default)]
pub struct ProtocolRegistry {
    modules: BTreeMap<WireTag, Arc<dyn FunctionModule>>,
}

impl ProtocolRegistry {
    /// An empty registry (serves nothing until modules are registered).
    pub fn empty() -> Self {
        ProtocolRegistry::default()
    }

    /// The four built-in modules: spam (tag 1), topic (2), virus (3),
    /// search (4).
    pub fn builtin() -> Self {
        let mut registry = ProtocolRegistry::empty();
        for module in [
            Arc::new(crate::spam::SpamFunction) as Arc<dyn FunctionModule>,
            Arc::new(crate::topic::TopicFunction),
            Arc::new(crate::virus::VirusFunction),
            Arc::new(crate::search::SearchFunction),
        ] {
            registry
                .register(module)
                .expect("built-in wire tags are distinct");
        }
        registry
    }

    /// Registers a module under its wire tag. Tag 0 (reserved) and tags
    /// already registered are rejected with [`PretzelError::Protocol`].
    pub fn register(&mut self, module: Arc<dyn FunctionModule>) -> Result<()> {
        let tag = module.wire_tag();
        if tag == 0 {
            return Err(PretzelError::Protocol(format!(
                "wire tag 0 is reserved (module {:?})",
                module.display_name()
            )));
        }
        if let Some(existing) = self.modules.get(&tag) {
            return Err(PretzelError::Protocol(format!(
                "wire tag {tag} already registered by module {:?} (rejected {:?})",
                existing.display_name(),
                module.display_name()
            )));
        }
        self.modules.insert(tag, module);
        Ok(())
    }

    /// Builder-style [`ProtocolRegistry::register`].
    pub fn with_module(mut self, module: Arc<dyn FunctionModule>) -> Result<Self> {
        self.register(module)?;
        Ok(self)
    }

    /// Resolves a handshake byte to its module; unknown tags are a clean
    /// [`PretzelError::Protocol`] error listing what this registry serves.
    pub fn from_wire_tag(&self, tag: WireTag) -> Result<&Arc<dyn FunctionModule>> {
        self.modules.get(&tag).ok_or_else(|| {
            PretzelError::Protocol(format!(
                "unknown protocol wire tag {tag} (registered: {:?})",
                self.wire_tags()
            ))
        })
    }

    /// Whether a module is registered under `tag`.
    pub fn contains(&self, tag: WireTag) -> bool {
        self.modules.contains_key(&tag)
    }

    /// Display name of the module registered under `tag`, if any.
    pub fn display_name(&self, tag: WireTag) -> Option<&'static str> {
        self.modules.get(&tag).map(|m| m.display_name())
    }

    /// Every registered wire tag, in wire-tag order.
    pub fn wire_tags(&self) -> Vec<WireTag> {
        self.modules.keys().copied().collect()
    }

    /// Every registered module, in wire-tag order (the replacement for the
    /// old closed `ProtocolKind::ALL` list).
    pub fn modules(&self) -> impl Iterator<Item = &Arc<dyn FunctionModule>> {
        self.modules.values()
    }

    /// Number of registered modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
}

impl std::fmt::Debug for ProtocolRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for (tag, module) in &self.modules {
            map.entry(tag, &module.display_name());
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeModule(WireTag, &'static str);

    impl FunctionModule for FakeModule {
        fn wire_tag(&self) -> WireTag {
            self.0
        }
        fn display_name(&self) -> &'static str {
            self.1
        }
        fn provider_setup(
            &self,
            _channel: &mut dyn Channel,
            _suite: &ProviderModelSuite,
            _variant: AheVariant,
            _rng: &mut dyn RngCore,
        ) -> Result<Box<dyn ProviderModule>> {
            Err(PretzelError::Protocol("fake module".into()))
        }
        fn client_setup(
            &self,
            _channel: &mut dyn Channel,
            _ctx: &ClientContext,
            _rng: &mut dyn RngCore,
        ) -> Result<Box<dyn ClientModule>> {
            Err(PretzelError::Protocol("fake module".into()))
        }
    }

    #[test]
    fn builtin_registry_round_trips_every_wire_tag() {
        let registry = ProtocolRegistry::builtin();
        assert_eq!(registry.wire_tags(), vec![1, 2, 3, 4]);
        for module in registry.modules() {
            let tag = module.wire_tag();
            let resolved = registry.from_wire_tag(tag).unwrap();
            assert_eq!(resolved.wire_tag(), tag, "from_wire_tag(wire_tag(k)) == k");
            assert_eq!(resolved.display_name(), module.display_name());
        }
        assert_eq!(registry.display_name(1), Some("spam"));
        assert_eq!(registry.display_name(2), Some("topic"));
        assert_eq!(registry.display_name(3), Some("virus"));
        assert_eq!(registry.display_name(4), Some("search"));
    }

    #[test]
    fn builtin_modules_declare_batching_optional_and_nothing_required() {
        let registry = ProtocolRegistry::builtin();
        for module in registry.modules() {
            assert_eq!(
                module.required_capabilities(),
                Capabilities::NONE,
                "{} must stay servable for legacy v1 peers",
                module.display_name()
            );
            assert!(
                module
                    .optional_capabilities()
                    .contains(Capabilities::ROUND_BATCH),
                "{} supports negotiated batching",
                module.display_name()
            );
        }
    }

    #[test]
    fn unknown_tags_are_clean_protocol_errors() {
        let registry = ProtocolRegistry::builtin();
        for tag in [0u8, 5, 0xFF] {
            assert!(
                matches!(registry.from_wire_tag(tag), Err(PretzelError::Protocol(_))),
                "tag {tag} must be rejected"
            );
            assert!(!registry.contains(tag));
        }
    }

    #[test]
    fn duplicate_and_reserved_registrations_are_rejected() {
        let mut registry = ProtocolRegistry::builtin();
        let clash = Arc::new(FakeModule(1, "imposter"));
        assert!(matches!(
            registry.register(clash),
            Err(PretzelError::Protocol(_))
        ));
        assert_eq!(registry.display_name(1), Some("spam"), "spam kept its tag");

        let reserved = Arc::new(FakeModule(0, "zero"));
        assert!(matches!(
            registry.register(reserved),
            Err(PretzelError::Protocol(_))
        ));

        // A fresh tag extends the registry without touching the built-ins.
        registry.register(Arc::new(FakeModule(9, "ninth"))).unwrap();
        assert_eq!(registry.wire_tags(), vec![1, 2, 3, 4, 9]);
        assert_eq!(registry.from_wire_tag(9).unwrap().display_name(), "ninth");
    }
}
