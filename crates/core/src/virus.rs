//! Private virus scanning of email attachments.
//!
//! The paper names virus scanning as one of the provider functions that
//! end-to-end encryption supposedly rules out (§1) and lists extending Pretzel
//! to it as future work (§7). Structurally it is the same problem as spam
//! filtering: a two-class linear classifier applied to an email, with the
//! provider holding proprietary model parameters and the client holding the
//! content. The only differences are the feature space — hashed byte n-grams
//! of the attachment bytes instead of word tokens
//! ([`pretzel_classifiers::NGramExtractor`]) — and who cares about the
//! verdict (the *client*, who wants to know whether an attachment is safe to
//! open, mirroring the spam arrangement where the output goes to the client).
//!
//! The module therefore reuses the spam protocol wholesale: setup ships the
//! n-gram parameters (public, like the choice of classification algorithm in
//! §2.1) plus the encrypted model; each scan is one secure dot product and one
//! Yao comparison. Guarantees 1 and 2 of §4.4 carry over unchanged: the
//! provider never sees attachment bytes, and the client learns one bit per
//! scan.

use std::sync::Arc;

use rand::{Rng, RngCore};

use pretzel_classifiers::nb::GrNbTrainer;
use pretzel_classifiers::{LabeledExample, LinearModel, NGramExtractor, SparseVector, Trainer};
use pretzel_transport::Channel;

use crate::bank::{PoolStats, PrecomputeSource, ReservoirSpec};
use crate::config::PretzelConfig;
use crate::registry::{ClientContext, ClientModule, FunctionModule, ProviderModule, WireTag};
use crate::session::{EmailPayload, ProviderModelSuite, Verdict};
use crate::spam::{AheVariant, SpamClient, SpamProvider};
use crate::{parse_u64, u64_bytes, PretzelError, Result};

/// Builds a two-class attachment model from labeled malicious and benign
/// samples.
///
/// Providers in practice train on large malware corpora; this builder stands
/// in for that pipeline so the examples and tests can exercise the protocol
/// end to end. Class 1 is "malicious", class 0 is "benign", matching the spam
/// module's convention that class 1 is the positive class.
#[derive(Clone, Debug)]
pub struct VirusModelBuilder {
    extractor: NGramExtractor,
    examples: Vec<LabeledExample>,
}

impl VirusModelBuilder {
    /// Starts a builder over the given feature space.
    pub fn new(extractor: NGramExtractor) -> Self {
        VirusModelBuilder {
            extractor,
            examples: Vec::new(),
        }
    }

    /// The feature extractor the resulting model expects.
    pub fn extractor(&self) -> NGramExtractor {
        self.extractor
    }

    /// Adds a known-malicious sample (e.g. a signature corpus entry).
    pub fn add_malicious(&mut self, content: &[u8]) -> &mut Self {
        self.push(content, 1);
        self
    }

    /// Adds a known-benign sample.
    pub fn add_benign(&mut self, content: &[u8]) -> &mut Self {
        self.push(content, 0);
        self
    }

    /// Number of training samples added so far.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Trains the two-class model with the given trainer (any of the paper's
    /// linear classifiers works; Graham–Robinson NB is the default used by
    /// [`VirusModelBuilder::train`]).
    pub fn train_with(&self, trainer: &dyn Trainer) -> LinearModel {
        trainer.train(&self.examples, self.extractor.buckets, 2)
    }

    /// Trains with the default GR-NB trainer.
    pub fn train(&self) -> LinearModel {
        self.train_with(&GrNbTrainer::default())
    }

    fn push(&mut self, content: &[u8], label: usize) {
        self.examples.push(LabeledExample {
            features: self.extractor.extract(content),
            label,
        });
    }
}

/// Provider endpoint of the virus-scanning module.
pub struct VirusScanProvider {
    inner: SpamProvider,
}

impl VirusScanProvider {
    /// Runs the setup phase as the provider: ships the (public) n-gram
    /// parameters and the encrypted model, then establishes the Yao session.
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        model: &LinearModel,
        extractor: NGramExtractor,
        config: &PretzelConfig,
        variant: AheVariant,
        rng: &mut R,
    ) -> Result<Self> {
        if model.num_features() != extractor.buckets {
            return Err(PretzelError::Protocol(format!(
                "model has {} features but the extractor hashes into {} buckets",
                model.num_features(),
                extractor.buckets
            )));
        }
        // The feature-space parameters are public (only model parameters are
        // proprietary, §2.1), so they travel in the clear ahead of the spam
        // machinery's setup.
        channel.send(&u64_bytes(extractor.n as u64))?;
        channel.send(&u64_bytes(extractor.buckets as u64))?;
        let inner = SpamProvider::setup(channel, model, config, variant, rng)?;
        Ok(VirusScanProvider { inner })
    }

    /// Per-attachment phase, provider side. The provider learns nothing about
    /// the attachment or the verdict.
    pub fn process_attachment<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        rng: &mut R,
    ) -> Result<()> {
        self.inner.process_email(channel, rng)
    }

    /// Batched per-attachment phase: serves `count` scans as one coalesced
    /// exchange (delegates to the spam machinery's batch path).
    pub fn process_attachment_batch<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        count: usize,
        rng: &mut R,
    ) -> Result<()> {
        self.inner.process_email_batch(channel, count, rng)
    }

    /// Offline phase: pre-garbles comparison circuits for `target` future
    /// scans (delegates to the spam machinery this module reuses).
    pub fn precompute<R: Rng + ?Sized>(&mut self, target: usize, rng: &mut R) -> usize {
        self.inner.precompute(target, rng)
    }

    /// Scans the offline pool can currently serve without inline garbling.
    pub fn pool_depth(&self) -> usize {
        self.inner.pool_depth()
    }

    /// Attaches a fleet-wide precompute source (delegates to the spam
    /// machinery this module reuses — the comparison circuits are identical,
    /// so both modules draw from the same garbling reservoir).
    pub fn attach_source(&mut self, source: Arc<dyn PrecomputeSource>) {
        self.inner.attach_source(source);
    }
}

/// Client endpoint of the virus-scanning module.
pub struct VirusScanClient {
    inner: SpamClient,
    extractor: NGramExtractor,
}

impl VirusScanClient {
    /// Runs the setup phase as the client: learns the (public) feature-space
    /// parameters, receives and stores the encrypted model, and establishes
    /// the Yao session.
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        config: &PretzelConfig,
        variant: AheVariant,
        rng: &mut R,
    ) -> Result<Self> {
        let n = parse_u64(&channel.recv()?)? as usize;
        let buckets = parse_u64(&channel.recv()?)? as usize;
        if n == 0 || buckets == 0 {
            return Err(PretzelError::Protocol(
                "n-gram parameters must be non-zero".into(),
            ));
        }
        let inner = SpamClient::setup(channel, config, variant, rng)?;
        Ok(VirusScanClient {
            inner,
            extractor: NGramExtractor::new(n, buckets),
        })
    }

    /// The feature extractor announced by the provider.
    pub fn extractor(&self) -> NGramExtractor {
        self.extractor
    }

    /// Client-side storage consumed by the encrypted model, in bytes.
    pub fn model_storage_bytes(&self) -> usize {
        self.inner.model_storage_bytes()
    }

    /// Offline phase: precomputes the Baseline Paillier randomizers `target`
    /// future scans will consume (no-op for the Pretzel variant).
    pub fn precompute<R: Rng + ?Sized>(&mut self, target: usize, rng: &mut R) -> usize {
        self.inner.precompute(target, rng)
    }

    /// Scans the offline pool can currently serve without inline work.
    pub fn pool_depth(&self) -> usize {
        self.inner.pool_depth()
    }

    /// Scans one attachment; returns `true` when it is classified malicious.
    /// The provider learns nothing (Guarantee 2 analogue: one bit, to the
    /// client only).
    pub fn scan<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        attachment: &[u8],
        rng: &mut R,
    ) -> Result<bool> {
        let features = self.extractor.extract(attachment);
        self.inner.classify(channel, &features, rng)
    }

    /// Batched scan: classifies every attachment in one coalesced exchange
    /// against a provider running
    /// [`VirusScanProvider::process_attachment_batch`] with the same count.
    /// Verdicts equal sequential [`VirusScanClient::scan`] calls.
    pub fn scan_batch<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        attachments: &[&[u8]],
        rng: &mut R,
    ) -> Result<Vec<bool>> {
        let features: Vec<SparseVector> = attachments
            .iter()
            .map(|bytes| self.extractor.extract(bytes))
            .collect();
        let refs: Vec<&SparseVector> = features.iter().collect();
        self.inner.classify_batch(channel, &refs, rng)
    }
}

/// The registrable virus-scanning function module (wire tag 3).
pub struct VirusFunction;

impl VirusFunction {
    /// Handshake byte of the virus module.
    pub const WIRE_TAG: WireTag = 3;
}

impl FunctionModule for VirusFunction {
    fn wire_tag(&self) -> WireTag {
        Self::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "virus"
    }

    fn provider_setup(
        &self,
        mut channel: &mut dyn Channel,
        suite: &ProviderModelSuite,
        variant: AheVariant,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>> {
        Ok(Box::new(VirusScanProvider::setup(
            &mut channel,
            &suite.virus,
            suite.virus_extractor,
            &suite.config,
            variant,
            rng,
        )?))
    }

    fn client_setup(
        &self,
        mut channel: &mut dyn Channel,
        ctx: &ClientContext,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ClientModule>> {
        Ok(Box::new(VirusScanClient::setup(
            &mut channel,
            &ctx.config,
            ctx.variant,
            rng,
        )?))
    }

    fn fleet_plan(&self, suite: &ProviderModelSuite) -> Vec<ReservoirSpec> {
        // Same comparison circuits as spam — registering the shared garbling
        // reservoirs again only bumps their refcounts.
        crate::spam::garbling_fleet_plan(&suite.config)
    }
}

impl ProviderModule for VirusScanProvider {
    fn wire_tag(&self) -> WireTag {
        VirusFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "virus"
    }

    fn precompute(&mut self, budget: usize, rng: &mut dyn RngCore) -> usize {
        VirusScanProvider::precompute(self, budget, rng)
    }

    fn pool_depth(&self) -> usize {
        VirusScanProvider::pool_depth(self)
    }

    fn attach_source(&mut self, source: Arc<dyn PrecomputeSource>) {
        VirusScanProvider::attach_source(self, source);
    }

    fn pool_stats(&self) -> Vec<PoolStats> {
        vec![self.inner.garbling_stats()]
    }

    fn process_round(
        &mut self,
        mut channel: &mut dyn Channel,
        rng: &mut dyn RngCore,
    ) -> Result<Option<usize>> {
        self.process_attachment(&mut channel, rng)?;
        Ok(None)
    }

    fn process_batch(
        &mut self,
        mut channel: &mut dyn Channel,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Option<usize>>> {
        self.process_attachment_batch(&mut channel, count, rng)?;
        Ok(vec![None; count])
    }
}

impl ClientModule for VirusScanClient {
    fn wire_tag(&self) -> WireTag {
        VirusFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "virus"
    }

    fn model_storage_bytes(&self) -> usize {
        VirusScanClient::model_storage_bytes(self)
    }

    fn precompute(&mut self, budget: usize, rng: &mut dyn RngCore) -> usize {
        VirusScanClient::precompute(self, budget, rng)
    }

    fn pool_depth(&self) -> usize {
        VirusScanClient::pool_depth(self)
    }

    fn process_round(
        &mut self,
        mut channel: &mut dyn Channel,
        payload: &EmailPayload,
        rng: &mut dyn RngCore,
    ) -> Result<Verdict> {
        match payload {
            EmailPayload::Attachment(bytes) => Ok(Verdict::Virus {
                is_malicious: self.scan(&mut channel, bytes, rng)?,
            }),
            other => Err(crate::session::payload_mismatch("virus", other)),
        }
    }

    fn process_batch(
        &mut self,
        mut channel: &mut dyn Channel,
        payloads: &[EmailPayload],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Verdict>> {
        let attachments = payloads
            .iter()
            .map(|p| match p {
                EmailPayload::Attachment(bytes) => Ok(bytes.as_slice()),
                other => Err(crate::session::payload_mismatch("virus", other)),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(self
            .scan_batch(&mut channel, &attachments, rng)?
            .into_iter()
            .map(|is_malicious| Verdict::Virus { is_malicious })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_transport::run_two_party;

    /// Synthetic "malware" shares a distinctive byte motif; benign content is
    /// plain text. Small on purpose — the protocol is identical at any scale.
    fn training_builder() -> VirusModelBuilder {
        let extractor = NGramExtractor::new(3, 512);
        let mut builder = VirusModelBuilder::new(extractor);
        for i in 0..30u8 {
            let mut bad = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, 0xbe, 0xef];
            bad.extend(std::iter::repeat_n(0xcc, 20));
            bad.push(i);
            builder.add_malicious(&bad);

            let good = format!("dear colleague, please find attached report number {i} for review");
            builder.add_benign(good.as_bytes());
        }
        builder
    }

    #[test]
    fn builder_counts_and_trains_a_two_class_model() {
        let builder = training_builder();
        assert_eq!(builder.len(), 60);
        assert!(!builder.is_empty());
        let model = builder.train();
        assert_eq!(model.num_classes(), 2);
        assert_eq!(model.num_features(), builder.extractor().buckets);
    }

    #[test]
    fn provider_rejects_a_model_feature_space_mismatch() {
        let builder = training_builder();
        let model = builder.train();
        let wrong_extractor = NGramExtractor::new(3, 1024);
        let (mut chan, _peer) = pretzel_transport::memory_pair();
        let err = VirusScanProvider::setup(
            &mut chan,
            &model,
            wrong_extractor,
            &PretzelConfig::test(),
            AheVariant::Pretzel,
            &mut rand::thread_rng(),
        );
        assert!(matches!(err, Err(PretzelError::Protocol(_))));
    }

    #[test]
    fn private_scan_flags_malicious_and_clears_benign_attachments() {
        let builder = training_builder();
        let extractor = builder.extractor();
        let model = builder.train();
        let config = PretzelConfig::test();
        let config_client = config.clone();

        let mut malicious = vec![0x4d, 0x5a, 0x90, 0x00, 0xde, 0xad, 0xbe, 0xef];
        malicious.extend(std::iter::repeat_n(0xcc, 20));
        let benign = b"meeting notes from tuesday, action items listed below".to_vec();
        let malicious_client = malicious.clone();
        let benign_client = benign.clone();

        let (provider_res, client_res) = run_two_party(
            move |chan| -> Result<()> {
                let mut rng = rand::thread_rng();
                let mut provider = VirusScanProvider::setup(
                    chan,
                    &model,
                    extractor,
                    &config,
                    AheVariant::Pretzel,
                    &mut rng,
                )?;
                provider.process_attachment(chan, &mut rng)?;
                provider.process_attachment(chan, &mut rng)?;
                Ok(())
            },
            move |chan| -> Result<(bool, bool, usize)> {
                let mut rng = rand::thread_rng();
                let mut client =
                    VirusScanClient::setup(chan, &config_client, AheVariant::Pretzel, &mut rng)?;
                let bad = client.scan(chan, &malicious_client, &mut rng)?;
                let good = client.scan(chan, &benign_client, &mut rng)?;
                Ok((bad, good, client.model_storage_bytes()))
            },
        );
        provider_res.unwrap();
        let (bad, good, storage) = client_res.unwrap();
        assert!(bad, "the malicious attachment must be flagged");
        assert!(!good, "the benign attachment must not be flagged");
        assert!(storage > 0);
    }

    #[test]
    fn client_learns_the_announced_feature_space() {
        let builder = training_builder();
        let extractor = builder.extractor();
        let model = builder.train();
        let config = PretzelConfig::test();
        let config_client = config.clone();

        let (provider_res, client_res) = run_two_party(
            move |chan| {
                let mut rng = rand::thread_rng();
                VirusScanProvider::setup(
                    chan,
                    &model,
                    extractor,
                    &config,
                    AheVariant::Pretzel,
                    &mut rng,
                )
                .map(|_| ())
            },
            move |chan| {
                let mut rng = rand::thread_rng();
                VirusScanClient::setup(chan, &config_client, AheVariant::Pretzel, &mut rng)
                    .map(|c| c.extractor())
            },
        );
        provider_res.unwrap();
        assert_eq!(client_res.unwrap(), NGramExtractor::new(3, 512));
    }
}
