//! Provider-served encrypted keyword search as a Pretzel function module.
//!
//! The paper's keyword-search module (§5) is client-side; the provider-side
//! variant it sketches as future work is implemented by `pretzel_sse` as a
//! bare two-message protocol. This module promotes that protocol to a
//! first-class function module with the same shape as spam/topic/virus —
//! `setup → precompute(budget) → process_round` — so the `pretzel_server`
//! mailroom can serve search sessions next to classification sessions.
//!
//! Protocol (one session):
//!
//! * **Setup** — commit–reveal joint randomness (§3.3 footnote 3) seeds the
//!   RLWE public polynomial `a`; the *client* generates the XPIR-BV key pair
//!   (it is the response recipient here, the reverse of the dot-product
//!   modules) and ships the public key; the provider confirms the agreed
//!   per-response capacity. Building [`pretzel_rlwe::Params`] precomputes the
//!   NTT twiddle tables once per session — every later encryption and
//!   decryption reuses them.
//! * **Offline phase** — [`SearchProvider::precompute`] banks encryptions of
//!   zero under the client's key (2 NTTs + noise sampling each). The online
//!   query path then reduces to `pooled_zero + plaintext` — `n` modular
//!   additions, no NTT, no sampling — with inline encryption as the pool-dry
//!   fallback. Pool depth never changes what a query returns, only its
//!   latency, matching the phase-split contract the other modules obey.
//! * **Per-round phase** — the client drives one of two operations per round:
//!   an **index** round uploads the encrypted postings of one email
//!   (opaque HMAC labels + sealed ids, exactly the `pretzel_sse` update
//!   format), or a **query** round sends a 32-byte label key
//!   (response-hiding: the value key never leaves the client) and receives
//!   the matching sealed postings packed into the slots of one RLWE
//!   ciphertext of fixed size, along with an encrypted checksum. The client
//!   decrypts, verifies the checksum, and opens the sealed ids locally.
//!
//! What the provider learns: posting counts, per-query result counts and the
//! access pattern — the standard SSE leakage. It never sees keywords, email
//! contents, or (thanks to response hiding) even the matching document ids.
//! The fixed-size RLWE response also hides the per-query result count from a
//! network observer, and the encrypted checksum makes response tampering or
//! truncation a detected protocol error rather than misdecoded results
//! (`tests/adversarial.rs` pins both).

use std::sync::Arc;

use rand::{Rng, RngCore};

use pretzel_primitives::sha256;
use pretzel_rlwe::{keygen, Ciphertext, Params, Plaintext, PublicKey, SecretKey};
use pretzel_sse::{DocId, EncryptedIndex, SseClient, UpdateBatch};
use pretzel_transport::{pack_frames, unpack_frames, Channel};

use crate::bank::{
    self, fingerprint64, PoolStats, PrecomputeSource, ReservoirId, ReservoirSpec,
    KIND_ZERO_ENCRYPTIONS,
};
use crate::config::PretzelConfig;
use crate::registry::{ClientContext, ClientModule, FunctionModule, ProviderModule, WireTag};
use crate::session::{EmailPayload, ProviderModelSuite, Verdict};
use crate::setup::{joint_randomness_initiator, joint_randomness_responder};
use crate::spam::AheVariant;
use crate::{parse_u64, u64_bytes, PretzelError, Result};

/// Round-message tag: upload one email's encrypted postings.
const TAG_INDEX: u8 = 0;
/// Round-message tag: single-keyword query (32-byte label key follows).
const TAG_QUERY: u8 = 1;

/// Each sealed 8-byte posting occupies this many 16-bit response slots.
const SLOTS_PER_POSTING: usize = 4;
/// Slots reserved besides the postings: the result count and two checksum
/// slots at the end of the ring.
const RESERVED_SLOTS: usize = 3;

/// Sealed postings one RLWE response ciphertext can carry for ring degree
/// `n`: slot 0 holds the result count, the last two slots the checksum, and
/// every posting takes four 16-bit slots in between.
pub fn response_capacity(params: &Params) -> usize {
    params.slots().saturating_sub(RESERVED_SLOTS) / SLOTS_PER_POSTING
}

/// What one provider-side round did (the search analogue of the topic index
/// a topic round reports): either postings were indexed or a query was
/// answered with some number of sealed results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchOp {
    /// An index round stored this many postings.
    Indexed(usize),
    /// A query round returned this many sealed postings (post-truncation).
    Answered(usize),
}

/// What a query round returned to the client. `total` is the provider's true
/// match count; when it exceeds `ids.len()` the result set was truncated to
/// the per-response capacity, and the client knows exactly how many matches
/// were dropped rather than mistaking a full response for an exact one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchResults {
    /// Ids of the returned matching emails (at most the response capacity).
    pub ids: Vec<DocId>,
    /// Total matching postings at the provider, before truncation.
    pub total: u64,
}

impl SearchResults {
    /// True when the provider had more matches than one response carries.
    pub fn truncated(&self) -> bool {
        self.total > self.ids.len() as u64
    }
}

/// Provider endpoint of the encrypted-search module.
pub struct SearchProvider {
    params: Params,
    /// The client's public key — responses are encrypted under it.
    pk: PublicKey,
    index: EncryptedIndex,
    /// Offline-banked encryptions of zero, one per future query round.
    pool: Vec<Ciphertext>,
    capacity: usize,
    /// Fleet-wide precompute source and this session's reservoir in it
    /// (key-dependent: zero encryptions under the client's key).
    source: Option<(Arc<dyn PrecomputeSource>, ReservoirId)>,
    /// Query rounds that found both the local pool and the bank dry.
    fallback_draws: u64,
}

impl Drop for SearchProvider {
    fn drop(&mut self) {
        // The zero-encryption reservoir is useless once this session's key
        // is gone — release it so the bank retires it instead of producing
        // for a dead key.
        if let Some((source, id)) = self.source.take() {
            source.release(&id);
        }
    }
}

impl SearchProvider {
    /// Runs the setup phase as the provider: joint randomness, receive the
    /// client's RLWE public key, confirm the per-response capacity.
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        config: &PretzelConfig,
        rng: &mut R,
    ) -> Result<Self> {
        let _seed = joint_randomness_initiator(channel, rng)?;
        let params = config.rlwe_params();
        check_params(&params)?;
        let pk = PublicKey::from_bytes(&params, &channel.recv()?)
            .map_err(|e| PretzelError::Ahe(e.to_string()))?;
        let capacity = response_capacity(&params);
        channel.send(&u64_bytes(capacity as u64))?;
        Ok(SearchProvider {
            params,
            pk,
            index: EncryptedIndex::new(),
            pool: Vec::new(),
            capacity,
            source: None,
            fallback_draws: 0,
        })
    }

    /// Hands this session a [`PrecomputeSource`] and registers its
    /// key-dependent zero-encryption reservoir there: the producer closure
    /// captures the client's public key, and the kind-level DAG schedules it
    /// after the fleet's shared key-independent stock.
    pub fn attach_source(&mut self, source: Arc<dyn PrecomputeSource>) {
        let id = ReservoirId::zero_encryptions(fingerprint64(&self.pk.to_bytes()));
        let pk = self.pk.clone();
        source.register(
            ReservoirSpec::new(
                id,
                Arc::new(move |rng: &mut dyn RngCore| {
                    Box::new(pk.encrypt_zero(rng)) as bank::Artifact
                }),
            )
            .after(bank::KEY_INDEPENDENT_KINDS),
        );
        if let Some((old, old_id)) = self.source.replace((source, id)) {
            old.release(&old_id);
        }
    }

    /// Draws one banked zero encryption, if a source is attached and stocked.
    fn draw_banked_zero(&self) -> Option<Ciphertext> {
        let (source, id) = self.source.as_ref()?;
        source
            .draw(id)
            .and_then(|artifact| artifact.downcast::<Ciphertext>().ok())
            .map(|boxed| *boxed)
    }

    /// Counts a query round that found every precomputed tier dry.
    fn note_fallback(&mut self) {
        self.fallback_draws += 1;
        if let Some((source, id)) = &self.source {
            source.record_fallback(id);
        }
    }

    /// Offline phase: tops the pool of pre-encrypted response randomizers
    /// (encryptions of zero under the client's key) up to `target`, returning
    /// the number produced. Each pooled ciphertext turns one future query
    /// response from a full RLWE encryption into `n` modular additions.
    pub fn precompute<R: Rng + ?Sized>(&mut self, target: usize, rng: &mut R) -> usize {
        let mut produced = 0;
        while self.pool.len() < target {
            self.pool.push(self.pk.encrypt_zero(rng));
            produced += 1;
        }
        produced
    }

    /// Query rounds the offline pool can serve without inline encryption.
    pub fn pool_depth(&self) -> usize {
        self.pool.len()
    }

    /// Read access to the stored encrypted index (size accounting).
    pub fn index(&self) -> &EncryptedIndex {
        &self.index
    }

    /// Serves one round: an index upload or a query, as chosen by the
    /// client's round message.
    pub fn process_round<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        rng: &mut R,
    ) -> Result<SearchOp> {
        let msg = channel.recv()?;
        let (reply, op) = self.handle_op(&msg, rng)?;
        channel.send(&reply)?;
        Ok(op)
    }

    /// Serves `count` rounds whose operation messages arrive as one
    /// coalesced frame, replying with one coalesced frame of responses —
    /// two messages for the whole batch instead of `2 × count`. Results
    /// equal `count` sequential [`SearchProvider::process_round`] calls.
    /// An empty batch exchanges no traffic, mirroring the client's batched
    /// path.
    pub fn process_round_batch<C: Channel, R: Rng + ?Sized>(
        &mut self,
        channel: &mut C,
        count: usize,
        rng: &mut R,
    ) -> Result<Vec<SearchOp>> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let msgs = unpack_frames(&channel.recv()?).map_err(PretzelError::Transport)?;
        if msgs.len() != count {
            return Err(PretzelError::Protocol(format!(
                "batch announced {count} rounds but carried {}",
                msgs.len()
            )));
        }
        let mut replies = Vec::with_capacity(count);
        let mut ops = Vec::with_capacity(count);
        for msg in &msgs {
            let (reply, op) = self.handle_op(msg, rng)?;
            replies.push(reply);
            ops.push(op);
        }
        channel.send(&pack_frames(&replies))?;
        Ok(ops)
    }

    /// Executes one operation message, returning the reply bytes and the
    /// operation record (shared by the sequential and batched paths).
    fn handle_op<R: Rng + ?Sized>(
        &mut self,
        msg: &[u8],
        rng: &mut R,
    ) -> Result<(Vec<u8>, SearchOp)> {
        match msg.first() {
            Some(&TAG_INDEX) => {
                let batch = parse_upload(&msg[1..])?;
                self.index.apply(&batch);
                Ok((
                    u64_bytes(batch.len() as u64).to_vec(),
                    SearchOp::Indexed(batch.len()),
                ))
            }
            Some(&TAG_QUERY) => {
                if msg.len() != 1 + 32 {
                    return Err(PretzelError::Protocol(
                        "search query must carry a 32-byte label key".into(),
                    ));
                }
                let mut label_key = [0u8; 32];
                label_key.copy_from_slice(&msg[1..]);
                let sealed = self.index.lookup_sealed(&label_key);
                let returned = sealed.len().min(self.capacity);
                let slots = encode_response(&self.params, &sealed[..returned], sealed.len() as u64);
                let pt = Plaintext::encode(&self.params, &slots)
                    .map_err(|e| PretzelError::Ahe(e.to_string()))?;
                // Online path: add the plaintext onto a pooled encryption of
                // zero — local pool first, then the fleet bank, then a fresh
                // inline encryption as the counted pool-dry fallback.
                let zero = self.pool.pop().or_else(|| self.draw_banked_zero());
                let ct = match zero {
                    Some(zero) => self.pk.add_plain(&zero, &pt),
                    None => {
                        self.note_fallback();
                        self.pk.encrypt(&pt, rng)
                    }
                };
                Ok((ct.to_bytes(), SearchOp::Answered(returned)))
            }
            Some(other) => Err(PretzelError::Protocol(format!(
                "unknown search round tag {other}"
            ))),
            None => Err(PretzelError::Protocol("empty search round message".into())),
        }
    }
}

/// Client endpoint of the encrypted-search module.
pub struct SearchClient {
    params: Params,
    sk: SecretKey,
    sse: SseClient,
    capacity: usize,
}

impl SearchClient {
    /// Runs the setup phase as the client: joint randomness, RLWE keygen
    /// (the shared seed fixes the public polynomial `a`), ship the public
    /// key, verify the provider's capacity announcement, and derive a fresh
    /// SSE master key.
    pub fn setup<C: Channel, R: Rng + ?Sized>(
        channel: &mut C,
        config: &PretzelConfig,
        rng: &mut R,
    ) -> Result<Self> {
        let seed = joint_randomness_responder(channel, rng)?;
        let params = config.rlwe_params();
        check_params(&params)?;
        let (sk, pk) = keygen(&params, Some(&seed), rng);
        channel.send(&pk.to_bytes())?;
        let announced = parse_u64(&channel.recv()?)? as usize;
        let capacity = response_capacity(&params);
        if announced != capacity {
            return Err(PretzelError::Protocol(format!(
                "provider announced response capacity {announced}, expected {capacity}"
            )));
        }
        Ok(SearchClient {
            params,
            sk,
            sse: SseClient::generate(rng),
            capacity,
        })
    }

    /// Client-side storage: the SSE master key, one counter per distinct
    /// keyword, and the RLWE secret key.
    pub fn storage_bytes(&self) -> usize {
        32 + self.sse.distinct_keywords() * 8 + self.params.slots() * 8
    }

    /// Distinct keywords indexed so far (the size of the client's sync
    /// state, see [`SseClient::distinct_keywords`]).
    pub fn distinct_keywords(&self) -> usize {
        self.sse.distinct_keywords()
    }

    /// Index round: encrypts one email body's postings under the SSE keys and
    /// uploads them. Returns the number of postings stored.
    pub fn index_email<C: Channel>(
        &mut self,
        channel: &mut C,
        doc_id: DocId,
        body: &str,
    ) -> Result<usize> {
        let (msg, uploaded) = self.index_request(doc_id, body);
        channel.send(&msg)?;
        self.check_index_ack(&channel.recv()?, uploaded)?;
        Ok(uploaded)
    }

    /// Builds one index round's request message, returning it with the
    /// number of postings it uploads. Advances the per-keyword SSE counters,
    /// so requests must reach the provider in build order.
    fn index_request(&mut self, doc_id: DocId, body: &str) -> (Vec<u8>, usize) {
        let batch = self.sse.index_email(doc_id, body);
        let mut msg = Vec::with_capacity(1 + 8 + batch.len() * 40);
        msg.push(TAG_INDEX);
        msg.extend_from_slice(&batch.to_wire_bytes());
        (msg, batch.len())
    }

    /// Validates an index round's acknowledgement against the upload size.
    fn check_index_ack(&self, reply: &[u8], uploaded: usize) -> Result<()> {
        let acked = parse_u64(reply)? as usize;
        if acked != uploaded {
            return Err(PretzelError::Protocol(format!(
                "provider acknowledged {acked} postings, uploaded {uploaded}"
            )));
        }
        Ok(())
    }

    /// Builds one query round's request message.
    fn query_request(&self, keyword: &str) -> Vec<u8> {
        let token = self.sse.search_token(keyword);
        let mut msg = Vec::with_capacity(1 + 32);
        msg.push(TAG_QUERY);
        msg.extend_from_slice(&token.label_key);
        msg
    }

    /// Query round: sends the keyword's label key, decrypts the fixed-size
    /// RLWE response, verifies its checksum, and opens the sealed ids.
    ///
    /// Any tampering with or truncation of the response fails decryption or
    /// the checksum and surfaces as a [`PretzelError::Protocol`] error — the
    /// client never returns misdecoded document ids.
    pub fn query<C: Channel>(&self, channel: &mut C, keyword: &str) -> Result<SearchResults> {
        channel.send(&self.query_request(keyword))?;
        let reply = channel.recv()?;
        self.open_response(keyword, &reply)
    }

    /// Decrypts and verifies one query response (shared by the sequential
    /// and batched paths).
    fn open_response(&self, keyword: &str, reply: &[u8]) -> Result<SearchResults> {
        let ct = Ciphertext::from_bytes(&self.params, reply).map_err(|_| {
            PretzelError::Protocol("search response is not a well-formed ciphertext".into())
        })?;
        let slots = self.sk.decrypt_slots(&ct);
        let n = self.params.slots();
        let total = slots[0];
        let returned = (total as usize).min(self.capacity);
        let mut sealed = Vec::with_capacity(returned);
        for i in 0..returned {
            let mut bytes = [0u8; 8];
            for c in 0..SLOTS_PER_POSTING {
                let v = slots[1 + i * SLOTS_PER_POSTING + c];
                if v >= 1 << 16 {
                    return Err(PretzelError::Protocol(
                        "search response rejected: posting slot out of range".into(),
                    ));
                }
                bytes[2 * c..2 * c + 2].copy_from_slice(&(v as u16).to_le_bytes());
            }
            sealed.push(bytes);
        }
        let (c0, c1) = response_checksum(total, &sealed);
        if slots[n - 2] != c0 || slots[n - 1] != c1 {
            return Err(PretzelError::Protocol(
                "search response rejected: checksum mismatch".into(),
            ));
        }
        Ok(SearchResults {
            ids: self.sse.open_results(keyword, &sealed),
            total,
        })
    }
}

/// The registrable encrypted-keyword-search function module (wire tag 4).
pub struct SearchFunction;

impl SearchFunction {
    /// Handshake byte of the search module.
    pub const WIRE_TAG: WireTag = 4;
}

impl FunctionModule for SearchFunction {
    fn wire_tag(&self) -> WireTag {
        Self::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "search"
    }

    fn provider_setup(
        &self,
        mut channel: &mut dyn Channel,
        suite: &ProviderModelSuite,
        _variant: AheVariant,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ProviderModule>> {
        // Search needs no trained model — only the suite's parameter preset;
        // the AHE variant byte is accepted but ignored (search always runs
        // over RLWE).
        Ok(Box::new(SearchProvider::setup(
            &mut channel,
            &suite.config,
            rng,
        )?))
    }

    fn client_setup(
        &self,
        mut channel: &mut dyn Channel,
        ctx: &ClientContext,
        rng: &mut dyn RngCore,
    ) -> Result<Box<dyn ClientModule>> {
        Ok(Box::new(SearchClient::setup(
            &mut channel,
            &ctx.config,
            rng,
        )?))
    }
}

impl ProviderModule for SearchProvider {
    fn wire_tag(&self) -> WireTag {
        SearchFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "search"
    }

    fn precompute(&mut self, budget: usize, rng: &mut dyn RngCore) -> usize {
        SearchProvider::precompute(self, budget, rng)
    }

    fn pool_depth(&self) -> usize {
        SearchProvider::pool_depth(self)
    }

    fn attach_source(&mut self, source: Arc<dyn PrecomputeSource>) {
        SearchProvider::attach_source(self, source);
    }

    fn pool_stats(&self) -> Vec<PoolStats> {
        vec![PoolStats {
            kind: KIND_ZERO_ENCRYPTIONS,
            depth: self.pool.len() as u64,
            fallback_draws: self.fallback_draws,
        }]
    }

    fn process_round(
        &mut self,
        mut channel: &mut dyn Channel,
        rng: &mut dyn RngCore,
    ) -> Result<Option<usize>> {
        // A search round only produces the standard SSE leakage, not a
        // per-round provider output.
        SearchProvider::process_round(self, &mut channel, rng)?;
        Ok(None)
    }

    fn process_batch(
        &mut self,
        mut channel: &mut dyn Channel,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Option<usize>>> {
        self.process_round_batch(&mut channel, count, rng)?;
        Ok(vec![None; count])
    }
}

/// Per-round context a batched search client keeps between sending its
/// coalesced requests and parsing the coalesced replies.
enum PendingSearchOp {
    Index { uploaded: usize },
    Query { keyword: String },
}

impl ClientModule for SearchClient {
    fn wire_tag(&self) -> WireTag {
        SearchFunction::WIRE_TAG
    }

    fn display_name(&self) -> &'static str {
        "search"
    }

    fn model_storage_bytes(&self) -> usize {
        self.storage_bytes()
    }

    fn precompute(&mut self, _budget: usize, _rng: &mut dyn RngCore) -> usize {
        // Search clients have no client-side offline work (the provider
        // banks the pre-encrypted responses).
        0
    }

    fn pool_depth(&self) -> usize {
        0
    }

    fn process_round(
        &mut self,
        mut channel: &mut dyn Channel,
        payload: &EmailPayload,
        _rng: &mut dyn RngCore,
    ) -> Result<Verdict> {
        match payload {
            EmailPayload::SearchIndex { doc_id, body } => Ok(Verdict::SearchIndexed {
                postings: self.index_email(&mut channel, *doc_id, body)?,
            }),
            EmailPayload::SearchQuery(keyword) => {
                let results = self.query(&mut channel, keyword)?;
                Ok(Verdict::SearchHits {
                    ids: results.ids,
                    total: results.total,
                })
            }
            other => Err(crate::session::payload_mismatch("search", other)),
        }
    }

    fn process_batch(
        &mut self,
        channel: &mut dyn Channel,
        payloads: &[EmailPayload],
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<Verdict>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        // Build every round's request first (index requests advance the SSE
        // counters in payload order, exactly as sequential rounds would),
        // then exchange two coalesced frames with the provider.
        let mut requests = Vec::with_capacity(payloads.len());
        let mut pending = Vec::with_capacity(payloads.len());
        for payload in payloads {
            match payload {
                EmailPayload::SearchIndex { doc_id, body } => {
                    let (msg, uploaded) = self.index_request(*doc_id, body);
                    requests.push(msg);
                    pending.push(PendingSearchOp::Index { uploaded });
                }
                EmailPayload::SearchQuery(keyword) => {
                    requests.push(self.query_request(keyword));
                    pending.push(PendingSearchOp::Query {
                        keyword: keyword.clone(),
                    });
                }
                other => return Err(crate::session::payload_mismatch("search", other)),
            }
        }
        channel.send(&pack_frames(&requests))?;
        let replies = unpack_frames(&channel.recv()?).map_err(PretzelError::Transport)?;
        if replies.len() != pending.len() {
            return Err(PretzelError::Protocol(format!(
                "provider replied to {} of {} batched rounds",
                replies.len(),
                pending.len()
            )));
        }
        pending
            .into_iter()
            .zip(&replies)
            .map(|(op, reply)| match op {
                PendingSearchOp::Index { uploaded } => {
                    self.check_index_ack(reply, uploaded)?;
                    Ok(Verdict::SearchIndexed { postings: uploaded })
                }
                PendingSearchOp::Query { keyword } => {
                    let results = self.open_response(&keyword, reply)?;
                    Ok(Verdict::SearchHits {
                        ids: results.ids,
                        total: results.total,
                    })
                }
            })
            .collect()
    }
}

/// Both presets satisfy these; a hand-rolled config might not.
fn check_params(params: &Params) -> Result<()> {
    if params.plain_bits < 16 || params.slots() < RESERVED_SLOTS + SLOTS_PER_POSTING {
        return Err(PretzelError::Protocol(format!(
            "RLWE parameters too small for search responses \
             (need >= 16-bit slots and a ring degree >= {})",
            RESERVED_SLOTS + SLOTS_PER_POSTING
        )));
    }
    Ok(())
}

/// Parses the body of an index-round upload — the shared
/// [`UpdateBatch::to_wire_bytes`] format, with its count-vs-length check.
fn parse_upload(body: &[u8]) -> Result<UpdateBatch> {
    Ok(UpdateBatch::from_wire_bytes(body)?)
}

/// Lays a query response out over the ring's slots: the provider's *total*
/// match count in slot 0 (so a truncated result set is visible to the
/// client), four 16-bit chunks per returned sealed posting, and the checksum
/// in the last two slots. Unused slots stay zero, so every response is the
/// same size.
fn encode_response(params: &Params, sealed: &[[u8; 8]], total: u64) -> Vec<u64> {
    let n = params.slots();
    let mut slots = vec![0u64; n];
    // The total always fits a slot: plain_bits >= 16 and the encrypted index
    // cannot plausibly hold 2^16 postings for one keyword in these tests and
    // benches; clamp defensively anyway.
    slots[0] = total.min(params.t - 1);
    for (i, posting) in sealed.iter().enumerate() {
        for c in 0..SLOTS_PER_POSTING {
            slots[1 + i * SLOTS_PER_POSTING + c] =
                u16::from_le_bytes([posting[2 * c], posting[2 * c + 1]]) as u64;
        }
    }
    let (c0, c1) = response_checksum(slots[0], sealed);
    slots[n - 2] = c0;
    slots[n - 1] = c1;
    slots
}

/// 32-bit checksum over a response's total-count slot and returned sealed
/// postings, split into two 16-bit slots. A tampered RLWE ciphertext
/// decrypts to essentially uniform slots, so a forged response passes this
/// check with probability ~2⁻³², on top of the posting-slot range checks.
fn response_checksum(total: u64, sealed: &[[u8; 8]]) -> (u64, u64) {
    let mut data = Vec::with_capacity(8 + sealed.len() * 8);
    data.extend_from_slice(&total.to_le_bytes());
    for s in sealed {
        data.extend_from_slice(s);
    }
    let h = sha256(&data);
    (
        u16::from_le_bytes([h[0], h[1]]) as u64,
        u16::from_le_bytes([h[2], h[3]]) as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_transport::run_two_party;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_session(budget: usize) -> (Vec<SearchOp>, Vec<Vec<DocId>>) {
        let config = PretzelConfig::test();
        let config_client = config.clone();
        run_two_party(
            move |chan| {
                let mut rng = StdRng::seed_from_u64(31);
                let mut provider = SearchProvider::setup(chan, &config, &mut rng).unwrap();
                assert_eq!(provider.precompute(budget, &mut rng), budget);
                let mut ops = Vec::new();
                for _ in 0..6 {
                    ops.push(provider.process_round(chan, &mut rng).unwrap());
                    provider.precompute(budget, &mut rng);
                }
                assert!(!provider.index().is_empty());
                ops
            },
            move |chan| {
                let mut rng = StdRng::seed_from_u64(32);
                let mut client = SearchClient::setup(chan, &config_client, &mut rng).unwrap();
                assert!(client.storage_bytes() > 0);
                client
                    .index_email(chan, 1, "quarterly earnings report attached")
                    .unwrap();
                client.index_email(chan, 2, "lunch at noon").unwrap();
                client
                    .index_email(chan, 3, "earnings call rescheduled")
                    .unwrap();
                let mut results = Vec::new();
                for kw in ["earnings", "lunch", "nonexistent"] {
                    let results_kw = client.query(chan, kw).unwrap();
                    assert_eq!(results_kw.total, results_kw.ids.len() as u64);
                    assert!(!results_kw.truncated());
                    let mut hits = results_kw.ids;
                    hits.sort_unstable();
                    results.push(hits);
                }
                assert_eq!(client.distinct_keywords(), 9);
                results
            },
        )
    }

    #[test]
    fn search_round_trip_finds_exactly_the_matching_emails() {
        let (ops, results) = run_session(0);
        assert_eq!(results, vec![vec![1, 3], vec![2], vec![]]);
        assert_eq!(
            &ops[..3],
            &[
                SearchOp::Indexed(4),
                SearchOp::Indexed(3),
                SearchOp::Indexed(3)
            ]
        );
        assert_eq!(
            &ops[3..],
            &[
                SearchOp::Answered(2),
                SearchOp::Answered(1),
                SearchOp::Answered(0)
            ]
        );
    }

    #[test]
    fn pool_budget_never_changes_results() {
        let baseline = run_session(0);
        assert_eq!(run_session(1), baseline, "drain-and-refill must match");
        assert_eq!(run_session(16), baseline, "never-dry pool must match");
    }

    #[test]
    fn oversized_result_sets_truncate_to_capacity_and_report_the_total() {
        let config = PretzelConfig::test();
        let capacity = response_capacity(&config.rlwe_params());
        let config_client = config.clone();
        let (_, results) = run_two_party(
            move |chan| {
                let mut rng = StdRng::seed_from_u64(33);
                let mut provider = SearchProvider::setup(chan, &config, &mut rng).unwrap();
                for _ in 0..capacity + 3 {
                    provider.process_round(chan, &mut rng).unwrap();
                }
                let op = provider.process_round(chan, &mut rng).unwrap();
                assert_eq!(op, SearchOp::Answered(capacity));
            },
            move |chan| {
                let mut rng = StdRng::seed_from_u64(34);
                let mut client = SearchClient::setup(chan, &config_client, &mut rng).unwrap();
                for id in 0..(capacity as u64) + 3 {
                    client
                        .index_email(chan, id, "recurring newsletter")
                        .unwrap();
                }
                client.query(chan, "recurring").unwrap()
            },
        );
        assert_eq!(
            results.ids.len(),
            capacity,
            "responses cap at the ring capacity"
        );
        assert_eq!(
            results.total,
            (capacity + 3) as u64,
            "the true match count still reaches the client"
        );
        assert!(results.truncated());
    }

    #[test]
    fn capacity_formula_reserves_count_and_checksum_slots() {
        let params = PretzelConfig::test().rlwe_params();
        let cap = response_capacity(&params);
        assert!(cap > 0);
        assert!(RESERVED_SLOTS + cap * SLOTS_PER_POSTING <= params.slots());
        assert!(RESERVED_SLOTS + (cap + 1) * SLOTS_PER_POSTING > params.slots());
    }

    #[test]
    fn provider_rejects_malformed_round_messages() {
        for bad in [vec![], vec![9u8, 1, 2], vec![TAG_QUERY, 1, 2, 3], {
            let mut m = vec![TAG_INDEX];
            m.extend_from_slice(&5u64.to_le_bytes());
            m
        }] {
            let config = PretzelConfig::test();
            let (provider_res, _) = run_two_party(
                move |chan| {
                    let mut rng = StdRng::seed_from_u64(35);
                    let mut provider = SearchProvider::setup(chan, &config, &mut rng).unwrap();
                    provider.process_round(chan, &mut rng)
                },
                move |chan| {
                    let mut rng = StdRng::seed_from_u64(36);
                    let _client =
                        SearchClient::setup(chan, &PretzelConfig::test(), &mut rng).unwrap();
                    chan.send(&bad).unwrap();
                },
            );
            assert!(
                matches!(
                    provider_res,
                    Err(PretzelError::Protocol(_))
                        | Err(PretzelError::Sse(pretzel_sse::SseError::Protocol(_)))
                ),
                "provider must reject malformed round messages, got {provider_res:?}"
            );
        }
    }

    #[test]
    fn upload_count_overflow_is_rejected_not_panicking() {
        // An attacker-controlled posting count near u64::MAX must be a clean
        // protocol error: naive `count * 40` panics in debug builds and
        // wraps in release (letting `1 + 2^61` masquerade as one entry).
        for evil_count in [u64::MAX, 1 + (1u64 << 61)] {
            let config = PretzelConfig::test();
            let (provider_res, _) = run_two_party(
                move |chan| {
                    let mut rng = StdRng::seed_from_u64(37);
                    let mut provider = SearchProvider::setup(chan, &config, &mut rng).unwrap();
                    provider.process_round(chan, &mut rng)
                },
                move |chan| {
                    let mut rng = StdRng::seed_from_u64(38);
                    let _client =
                        SearchClient::setup(chan, &PretzelConfig::test(), &mut rng).unwrap();
                    let mut msg = vec![TAG_INDEX];
                    msg.extend_from_slice(&evil_count.to_le_bytes());
                    msg.extend_from_slice(&[0u8; 40]); // one real entry
                    chan.send(&msg).unwrap();
                },
            );
            assert!(
                matches!(provider_res, Err(PretzelError::Sse(_))),
                "count {evil_count} must be rejected, got {provider_res:?}"
            );
        }
    }
}
