//! Replay defense (paper §4.4, "Repetition and replay").
//!
//! An adversarial provider could replay an email to the client's topic
//! extraction module k times and harvest k·log B bits instead of log B. The
//! paper's defense is for the client to treat each sender as a separate
//! lossy, duplicating channel and run standard duplicate suppression
//! (counters / windows) over *signed* emails. This module implements a
//! per-sender sliding window of recently seen message identifiers plus a
//! low-water mark, which is exactly the "counters, windows, etc." mechanism
//! the paper appeals to.

use std::collections::{HashMap, VecDeque};

/// Per-sender duplicate-suppression state.
#[derive(Clone, Debug)]
struct SenderWindow {
    /// Identifiers seen recently (bounded by `window`).
    recent: VecDeque<u64>,
    /// Every id ≤ this value is considered already-processed.
    low_water_mark: u64,
}

/// Tracks which (sender, message id) pairs have already been fed to a
/// function module, so each email is processed at most once (Guarantee 3,
/// §4.4).
#[derive(Clone, Debug)]
pub struct ReplayGuard {
    window: usize,
    senders: HashMap<String, SenderWindow>,
}

impl ReplayGuard {
    /// Creates a guard keeping a window of `window` recent ids per sender.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        ReplayGuard {
            window,
            senders: HashMap::new(),
        }
    }

    /// Returns `true` (and records the id) if this (sender, id) pair has not
    /// been seen before; `false` if it is a replay or too old to verify.
    pub fn check_and_record(&mut self, sender: &str, message_id: u64) -> bool {
        let state = self
            .senders
            .entry(sender.to_string())
            .or_insert_with(|| SenderWindow {
                recent: VecDeque::new(),
                low_water_mark: 0,
            });
        if message_id <= state.low_water_mark && state.low_water_mark > 0 {
            return false;
        }
        if state.recent.contains(&message_id) {
            return false;
        }
        state.recent.push_back(message_id);
        if state.recent.len() > self.window {
            // Advance the low-water mark past the evicted id: anything at or
            // below it will be rejected as "too old / possibly replayed".
            if let Some(evicted) = state.recent.pop_front() {
                state.low_water_mark = state.low_water_mark.max(evicted);
            }
        }
        true
    }

    /// Number of senders with tracked state.
    pub fn tracked_senders(&self) -> usize {
        self.senders.len()
    }
}

impl Default for ReplayGuard {
    fn default() -> Self {
        ReplayGuard::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_accepted_replays_rejected() {
        let mut guard = ReplayGuard::new(16);
        assert!(guard.check_and_record("alice@example.com", 1));
        assert!(guard.check_and_record("alice@example.com", 2));
        assert!(!guard.check_and_record("alice@example.com", 1), "replay");
        assert!(!guard.check_and_record("alice@example.com", 2), "replay");
        assert!(guard.check_and_record("alice@example.com", 3));
    }

    #[test]
    fn senders_are_independent_channels() {
        let mut guard = ReplayGuard::new(16);
        assert!(guard.check_and_record("alice@example.com", 7));
        assert!(
            guard.check_and_record("bob@example.com", 7),
            "same id, other sender"
        );
        assert_eq!(guard.tracked_senders(), 2);
    }

    #[test]
    fn out_of_order_delivery_within_the_window_is_accepted() {
        let mut guard = ReplayGuard::new(8);
        for id in [5u64, 3, 8, 1, 2] {
            assert!(guard.check_and_record("alice", id), "id {id}");
        }
        assert!(!guard.check_and_record("alice", 3));
    }

    #[test]
    fn ids_below_the_low_water_mark_are_rejected() {
        let mut guard = ReplayGuard::new(4);
        for id in 1..=10u64 {
            assert!(guard.check_and_record("alice", id));
        }
        // Window is 4, so ids well below the evicted range cannot be verified
        // as fresh and must be rejected (conservative: possible replay).
        assert!(!guard.check_and_record("alice", 2));
        assert!(guard.check_and_record("alice", 11));
    }

    #[test]
    fn default_window_is_reasonable() {
        let mut guard = ReplayGuard::default();
        for id in 0..2000u64 {
            assert!(guard.check_and_record("alice", id + 1));
        }
        assert!(!guard.check_and_record("alice", 2000));
    }
}
