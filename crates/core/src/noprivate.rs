//! The NoPriv reference system (paper §6, "Method and setup").
//!
//! NoPriv models the status quo: the provider holds the plaintext email and
//! its own model, and classifies locally — `L` feature lookups and `L·B`
//! additions per email, no setup, no client cost. Every provider-CPU figure
//! (7 and 10) and the headline ratios compare Pretzel against this.

use pretzel_classifiers::{LinearModel, SparseVector};

/// A provider that classifies plaintext emails locally.
#[derive(Clone, Debug)]
pub struct NoPrivProvider {
    model: LinearModel,
}

impl NoPrivProvider {
    /// Creates the provider from a trained model.
    pub fn new(model: LinearModel) -> Self {
        NoPrivProvider { model }
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.model.num_classes()
    }

    /// Classifies an email's feature vector (argmax over categories).
    pub fn classify(&self, features: &SparseVector) -> usize {
        self.model.predict(features)
    }

    /// Spam convenience wrapper: true when the email is classified as class 1.
    pub fn is_spam(&self, features: &SparseVector) -> bool {
        self.classify(features) == 1
    }

    /// Raw scores (used by tests to cross-check the private protocols).
    pub fn scores(&self, features: &SparseVector) -> Vec<f64> {
        self.model.scores(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_and_is_spam_agree_with_the_model() {
        let model = LinearModel {
            weights: vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            bias: vec![0.0, 0.0],
        };
        let provider = NoPrivProvider::new(model);
        assert_eq!(provider.categories(), 2);
        let spammy = SparseVector::from_pairs(vec![(0, 3)]);
        let hammy = SparseVector::from_pairs(vec![(1, 3)]);
        assert!(provider.is_spam(&spammy));
        assert!(!provider.is_spam(&hammy));
        assert_eq!(provider.classify(&spammy), 1);
        assert_eq!(provider.scores(&spammy), vec![0.0, 3.0]);
    }
}
