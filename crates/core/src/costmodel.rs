//! The analytic cost model of Figure 3.
//!
//! The paper summarizes setup and per-email costs of the Non-private,
//! Baseline (§3.3) and Pretzel (§4.1–§4.3) arrangements as closed-form
//! expressions over microbenchmark constants (Figure 6) and workload
//! parameters (N, N′, B, B′, L, email size). This module reproduces those
//! formulas so the `fig03_cost_model` harness can print the same rows, and so
//! tests can check the measured protocol costs against the model's
//! predictions (shape, not absolute values).

/// Microbenchmark constants (Figure 6). Times in microseconds, sizes in
/// bytes. Defaults are the paper's reported values; harnesses can substitute
/// locally measured ones.
#[derive(Clone, Debug)]
pub struct MicroCosts {
    /// Paillier encryption time (e_pail).
    pub paillier_enc_us: f64,
    /// Paillier decryption time (d_pail).
    pub paillier_dec_us: f64,
    /// Paillier homomorphic addition time (a_pail).
    pub paillier_add_us: f64,
    /// Paillier ciphertext size (c_pail).
    pub paillier_ct_bytes: f64,
    /// XPIR-BV encryption time (e_xpir).
    pub xpir_enc_us: f64,
    /// XPIR-BV decryption time (d_xpir).
    pub xpir_dec_us: f64,
    /// XPIR-BV homomorphic addition time (a_xpir).
    pub xpir_add_us: f64,
    /// XPIR-BV "left shift and add" time (s).
    pub xpir_shift_us: f64,
    /// XPIR-BV ciphertext size (c_xpir).
    pub xpir_ct_bytes: f64,
    /// Yao CPU time per b-bit input value (y_per-in).
    pub yao_per_input_us: f64,
    /// Yao network transfer per b-bit input value (sz_per-in).
    pub yao_per_input_bytes: f64,
    /// Non-private feature lookup time (h, per feature).
    pub noprivate_lookup_us: f64,
    /// Non-private float addition time (s in the Non-private column).
    pub noprivate_add_us: f64,
    /// Packing capacity of a Paillier ciphertext (p_pail).
    pub paillier_slots: f64,
    /// Packing capacity of an XPIR-BV ciphertext (p_xpir).
    pub xpir_slots: f64,
}

impl Default for MicroCosts {
    fn default() -> Self {
        // Figure 6's numbers (m3.2xlarge), converted to µs / bytes.
        MicroCosts {
            paillier_enc_us: 2500.0,
            paillier_dec_us: 700.0,
            paillier_add_us: 7.0,
            paillier_ct_bytes: 256.0,
            xpir_enc_us: 103.0,
            xpir_dec_us: 31.0,
            xpir_add_us: 3.0,
            xpir_shift_us: 70.0,
            xpir_ct_bytes: 16.0 * 1024.0,
            yao_per_input_us: 71.0,
            yao_per_input_bytes: 2501.0,
            noprivate_lookup_us: 0.17,
            noprivate_add_us: 0.001,
            paillier_slots: 64.0,
            xpir_slots: 1024.0,
        }
    }
}

/// Workload parameters for one classification deployment.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Features in the model (N).
    pub model_features: usize,
    /// Features kept after aggressive selection (N′ ≤ N).
    pub selected_features: usize,
    /// Categories (B).
    pub categories: usize,
    /// Candidate categories after decomposition (B′ ≤ B; equal to B for spam).
    pub candidates: usize,
    /// Features per email (L).
    pub email_features: usize,
    /// Email size in bytes (sz_email).
    pub email_bytes: usize,
}

impl Workload {
    /// The paper's spam operating point: N = 5M, B = 2, L = 692, 75 KB email.
    pub fn paper_spam() -> Self {
        Workload {
            model_features: 5_000_000,
            selected_features: 5_000_000,
            categories: 2,
            candidates: 2,
            email_features: 692,
            email_bytes: 75 * 1024,
        }
    }

    /// The paper's topic operating point: N = 100K (N′ = 25K), B = 2048,
    /// B′ = 20, L = 692.
    pub fn paper_topics() -> Self {
        Workload {
            model_features: 100_000,
            selected_features: 25_000,
            categories: 2048,
            candidates: 20,
            email_features: 692,
            email_bytes: 75 * 1024,
        }
    }
}

/// Predicted costs of one arrangement.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    /// Setup-phase provider CPU (µs).
    pub setup_provider_cpu_us: f64,
    /// Setup-phase network transfer (bytes).
    pub setup_network_bytes: f64,
    /// Client-side storage (bytes).
    pub client_storage_bytes: f64,
    /// Per-email provider CPU (µs).
    pub email_provider_cpu_us: f64,
    /// Per-email client CPU (µs).
    pub email_client_cpu_us: f64,
    /// Per-email network transfer (bytes).
    pub email_network_bytes: f64,
}

/// Figure 3, "Non-private" column.
pub fn non_private(costs: &MicroCosts, w: &Workload) -> CostBreakdown {
    let l = w.email_features as f64;
    let b = w.categories as f64;
    CostBreakdown {
        setup_provider_cpu_us: 0.0,
        setup_network_bytes: 0.0,
        client_storage_bytes: 0.0,
        email_provider_cpu_us: l * costs.noprivate_lookup_us + l * b * costs.noprivate_add_us,
        email_client_cpu_us: 0.0,
        email_network_bytes: w.email_bytes as f64,
    }
}

/// Figure 3, "Baseline" column (§3.3): Paillier + legacy packing.
pub fn baseline(costs: &MicroCosts, w: &Workload) -> CostBreakdown {
    let n = w.model_features as f64;
    let b = w.categories as f64;
    let l = w.email_features as f64;
    let beta_pail = (b / costs.paillier_slots).ceil();
    CostBreakdown {
        setup_provider_cpu_us: n * beta_pail * costs.paillier_enc_us,
        setup_network_bytes: n * beta_pail * costs.paillier_ct_bytes,
        client_storage_bytes: n * beta_pail * costs.paillier_ct_bytes,
        email_provider_cpu_us: beta_pail * costs.paillier_dec_us + b * costs.yao_per_input_us,
        email_client_cpu_us: l * beta_pail * costs.paillier_add_us
            + beta_pail * costs.paillier_enc_us
            + b * costs.yao_per_input_us,
        email_network_bytes: w.email_bytes as f64
            + beta_pail * costs.paillier_ct_bytes
            + b * costs.yao_per_input_bytes,
    }
}

/// Figure 3, "Pretzel" column (§4.1–§4.3): XPIR-BV, across-row packing,
/// feature selection, decomposed classification.
pub fn pretzel(costs: &MicroCosts, w: &Workload) -> CostBreakdown {
    let n_sel = w.selected_features as f64;
    let b = w.categories as f64;
    let b_prime = w.candidates as f64;
    let l = w.email_features as f64;
    let p = costs.xpir_slots;
    // β′_xpir: ciphertexts needed to hold the model with across-row packing.
    let beta_prime = if b >= p {
        (b / p).ceil()
    } else {
        // ⌊B/p⌋ + 1/⌊p/k⌋ with k = B mod p — i.e. rows share ciphertexts.
        b / p.min(b * (p / b).floor()).max(1.0)
    };
    let beta_xpir = (b / p).ceil();
    // β″: result ciphertexts per email (1 column group for spam, B′ for topics).
    let (beta_result, yao_inputs) = if w.candidates < w.categories {
        (b_prime, b_prime)
    } else {
        (beta_xpir, b)
    };
    CostBreakdown {
        setup_provider_cpu_us: n_sel * beta_prime * costs.xpir_enc_us,
        setup_network_bytes: n_sel * beta_prime * costs.xpir_ct_bytes,
        client_storage_bytes: n_sel * beta_prime * costs.xpir_ct_bytes,
        email_provider_cpu_us: beta_result * costs.xpir_dec_us
            + yao_inputs * costs.yao_per_input_us,
        email_client_cpu_us: l * costs.xpir_add_us
            + (l + b_prime) * costs.xpir_shift_us
            + beta_result * costs.xpir_enc_us
            + yao_inputs * costs.yao_per_input_us,
        email_network_bytes: w.email_bytes as f64
            + beta_result * costs.xpir_ct_bytes
            + yao_inputs * costs.yao_per_input_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spam_provider_cpu_ordering_matches_figure7() {
        // Baseline > Pretzel for provider CPU; Pretzel is within a small
        // multiple of NoPriv at L = 692 (the paper reports 0.65x–2.7x).
        let costs = MicroCosts::default();
        let w = Workload::paper_spam();
        let np = non_private(&costs, &w);
        let base = baseline(&costs, &w);
        let pz = pretzel(&costs, &w);
        assert!(base.email_provider_cpu_us > pz.email_provider_cpu_us);
        let ratio = pz.email_provider_cpu_us / np.email_provider_cpu_us;
        assert!(ratio > 0.3 && ratio < 3.5, "Pretzel/NoPriv ratio {ratio}");
    }

    #[test]
    fn spam_storage_ordering_matches_figure8() {
        let costs = MicroCosts::default();
        let w = Workload::paper_spam();
        let base = baseline(&costs, &w);
        let pz = pretzel(&costs, &w);
        // Baseline ≈ 1.3 GB, Pretzel ≈ 160–200 MB at N = 5M (≈ 7x smaller).
        let ratio = base.client_storage_bytes / pz.client_storage_bytes;
        assert!(ratio > 4.0 && ratio < 12.0, "storage ratio {ratio}");
        assert!(pz.client_storage_bytes < 300.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn topic_decomposition_cuts_provider_cpu_and_network() {
        let costs = MicroCosts::default();
        let full = Workload {
            candidates: 2048,
            ..Workload::paper_topics()
        };
        let decomposed = Workload::paper_topics();
        let pz_full = pretzel(&costs, &full);
        let pz_dec = pretzel(&costs, &decomposed);
        assert!(pz_full.email_provider_cpu_us / pz_dec.email_provider_cpu_us > 20.0);
        assert!(pz_full.email_network_bytes > pz_dec.email_network_bytes);
    }

    #[test]
    fn pretzel_network_overhead_is_small_multiple_of_email_size() {
        // §6.2: 402 KB per email ≈ 5.4x the 74 KB average email at B′ = 20.
        let costs = MicroCosts::default();
        let w = Workload::paper_topics();
        let pz = pretzel(&costs, &w);
        let ratio = pz.email_network_bytes / w.email_bytes as f64;
        assert!(ratio > 2.0 && ratio < 10.0, "network ratio {ratio}");
    }

    #[test]
    fn non_private_has_no_setup_or_client_costs() {
        let costs = MicroCosts::default();
        let np = non_private(&costs, &Workload::paper_spam());
        assert_eq!(np.setup_provider_cpu_us, 0.0);
        assert_eq!(np.client_storage_bytes, 0.0);
        assert_eq!(np.email_client_cpu_us, 0.0);
    }

    #[test]
    fn client_cpu_is_dominated_by_shifts_for_long_emails() {
        // §6.1: 5000 features ≈ 5000 × 70 µs ≈ 350 ms.
        let costs = MicroCosts::default();
        let w = Workload {
            email_features: 5000,
            ..Workload::paper_spam()
        };
        let pz = pretzel(&costs, &w);
        assert!(pz.email_client_cpu_us > 300_000.0 && pz.email_client_cpu_us < 500_000.0);
    }
}
