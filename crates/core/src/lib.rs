//! Pretzel: end-to-end encrypted email with provider-supplied functions.
//!
//! This crate is the paper's primary contribution (§2–§4): it composes the
//! substrate crates — `pretzel-e2e` (end-to-end encryption), `pretzel-rlwe`
//! and `pretzel-paillier` (additively homomorphic encryption), `pretzel-sdp`
//! (GLLM secure dot products with packing), `pretzel-gc` (Yao's garbled
//! circuits with OT extension), and `pretzel-classifiers` (linear models) —
//! into the two function modules the paper evaluates, plus the reference
//! systems they are compared against:
//!
//! * [`spam`] — private spam filtering: the client learns a single spam/ham
//!   bit per email, the provider learns nothing (§3.3, §4.1–§4.2, Figures
//!   7–9).
//! * [`topic`] — private topic extraction with decomposed classification: the
//!   provider learns a single topic index per email, the client's candidate
//!   set and email stay hidden (§4.3, Figure 5, Figures 10–14).
//! * [`virus`] — private virus scanning of attachments, one of the functions
//!   the paper lists as future work (§7); it reuses the spam machinery over a
//!   hashed byte n-gram feature space.
//! * [`noprivate`] — the NoPriv reference: a provider that classifies
//!   plaintext, the paper's status-quo comparator.
//! * [`costmodel`] — the analytic cost model of Figure 3.
//! * [`setup`] — joint randomness for AHE parameter generation (§3.3,
//!   footnote 3).
//! * [`replay`] — the per-sender replay defense of §4.4.
//! * [`config`] — parameter presets ("test" scale vs "paper" scale).
//! * [`search`] — provider-served encrypted keyword search over searchable
//!   symmetric encryption with RLWE-packed responses (the provider-side
//!   search the paper sketches as future work in §5, promoted to a full
//!   function module).
//! * [`registry`] — the function-module registry: object-safe
//!   [`FunctionModule`] descriptors keyed by wire tag, the extension point
//!   that makes a fifth provider function a registration instead of a core
//!   edit.
//! * [`session`] — uniform, session-reusable entry points over the
//!   registered function modules, used by the `pretzel_server` mailroom to
//!   multiplex many concurrent sessions; rounds run one at a time or as
//!   coalesced batches.
//! * [`bank`] — the fleet-wide precompute bank: per-kind artifact
//!   reservoirs kept full by background producer threads scheduled over a
//!   dependency DAG, consumed through the object-safe
//!   [`bank::PrecomputeSource`] trait with work-stealing
//!   draws and counted inline fallbacks.

#![warn(missing_docs)]

pub mod bank;
pub mod config;
pub mod costmodel;
pub mod noprivate;
pub mod registry;
pub mod replay;
pub mod search;
pub mod session;
pub mod setup;
pub mod spam;
pub mod topic;
pub mod virus;

pub use bank::{
    BankConfig, BankReport, PoolStats, PrecomputeBank, PrecomputeSource, ReservoirId,
    ReservoirSpec, ReservoirStats,
};
pub use config::{PretzelConfig, Scale};
pub use noprivate::NoPrivProvider;
pub use registry::{
    ClientContext, ClientModule, FunctionModule, ProtocolRegistry, ProviderModule, WireTag,
};
pub use replay::ReplayGuard;
pub use session::{ClientSession, EmailPayload, ProviderModelSuite, ProviderSession, Verdict};

// Wire-protocol negotiation vocabulary, re-exported so module authors can
// declare capabilities without depending on `pretzel_transport` directly.
pub use pretzel_transport::wire::{
    Capabilities, HandshakeError, NegotiatedProfile, ProtocolVersion,
};

/// Errors surfaced by the Pretzel function modules.
#[derive(Debug)]
pub enum PretzelError {
    /// Transport failure.
    Transport(pretzel_transport::TransportError),
    /// Garbled-circuit / OT failure.
    Gc(pretzel_gc::GcError),
    /// Secure dot-product failure.
    Sdp(pretzel_sdp::SdpError),
    /// Searchable-symmetric-encryption failure (search sessions).
    Sse(pretzel_sse::SseError),
    /// AHE failure.
    Ahe(String),
    /// A protocol message was malformed or out of order.
    Protocol(String),
    /// Replay detected (an email was fed to a function module twice).
    Replay {
        /// Sender whose duplicate-suppression window rejected the email.
        sender: String,
        /// The replayed message identifier.
        message_id: u64,
    },
}

impl std::fmt::Display for PretzelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PretzelError::Transport(e) => write!(f, "transport: {e}"),
            PretzelError::Gc(e) => write!(f, "garbled circuits: {e}"),
            PretzelError::Sdp(e) => write!(f, "secure dot product: {e}"),
            PretzelError::Sse(e) => write!(f, "searchable encryption: {e}"),
            PretzelError::Ahe(e) => write!(f, "AHE: {e}"),
            PretzelError::Protocol(e) => write!(f, "protocol: {e}"),
            PretzelError::Replay { sender, message_id } => {
                write!(f, "replay detected from {sender} (message {message_id})")
            }
        }
    }
}

impl std::error::Error for PretzelError {}

impl From<pretzel_transport::TransportError> for PretzelError {
    fn from(e: pretzel_transport::TransportError) -> Self {
        PretzelError::Transport(e)
    }
}

impl From<pretzel_gc::GcError> for PretzelError {
    fn from(e: pretzel_gc::GcError) -> Self {
        PretzelError::Gc(e)
    }
}

impl From<pretzel_sdp::SdpError> for PretzelError {
    fn from(e: pretzel_sdp::SdpError) -> Self {
        PretzelError::Sdp(e)
    }
}

impl From<pretzel_sse::SseError> for PretzelError {
    fn from(e: pretzel_sse::SseError) -> Self {
        PretzelError::Sse(e)
    }
}

/// Result alias for Pretzel operations.
pub type Result<T> = std::result::Result<T, PretzelError>;

/// Encodes a `u64` as 8 little-endian bytes (tiny helper for protocol
/// metadata messages).
pub(crate) fn u64_bytes(v: u64) -> [u8; 8] {
    v.to_le_bytes()
}

/// Decodes a `u64` from a protocol message.
pub(crate) fn parse_u64(bytes: &[u8]) -> Result<u64> {
    bytes
        .try_into()
        .map(u64::from_le_bytes)
        .map_err(|_| PretzelError::Protocol("expected an 8-byte integer message".into()))
}
