//! Number-theoretic transform over Z_q for the negacyclic ring
//! Z_q\[x\]/(x^n + 1), plus the modular arithmetic helpers used throughout the
//! RLWE scheme.
//!
//! The forward/inverse transforms follow the standard iterative
//! decimation-in-time formulation with the ψ-twist merged into the butterfly
//! tables (Longa–Naehrig), so polynomial multiplication is a pointwise product
//! between transforms.

/// Modular addition in Z_q.
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Modular subtraction in Z_q.
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Modular multiplication in Z_q via 128-bit intermediates.
#[inline]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Modular exponentiation in Z_q.
pub fn pow_mod(mut base: u64, mut exp: u64, q: u64) -> u64 {
    let mut acc = 1u64;
    base %= q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, q);
        }
        base = mul_mod(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Modular inverse in Z_q (q prime), via Fermat's little theorem.
pub fn inv_mod(a: u64, q: u64) -> u64 {
    pow_mod(a, q - 2, q)
}

/// Deterministic Miller–Rabin for `u64` (the base set below is provably
/// correct for all 64-bit integers).
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds the smallest prime `q >= lower_bound` with `q ≡ 1 (mod 2n)`, which
/// guarantees a primitive 2n-th root of unity exists.
pub fn find_ntt_prime(n: usize, lower_bound: u64) -> u64 {
    let step = 2 * n as u64;
    let mut candidate = lower_bound - (lower_bound % step) + 1;
    if candidate < lower_bound {
        candidate += step;
    }
    loop {
        if is_prime_u64(candidate) {
            return candidate;
        }
        candidate += step;
    }
}

/// Finds a primitive 2n-th root of unity ψ modulo prime `q` (q ≡ 1 mod 2n).
pub fn find_primitive_root(n: usize, q: u64) -> u64 {
    let order = 2 * n as u64;
    let cofactor = (q - 1) / order;
    // Try small candidates; g^cofactor is a 2n-th root of unity, and it is
    // primitive iff its n-th power is -1 (i.e. != 1 at order/2).
    for g in 2u64.. {
        let psi = pow_mod(g, cofactor, q);
        if psi == 1 {
            continue;
        }
        if pow_mod(psi, order / 2, q) == q - 1 {
            return psi;
        }
    }
    unreachable!("a primitive root always exists for a valid NTT prime")
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Precomputed tables for negacyclic NTT of size `n` over Z_q.
#[derive(Clone, Debug)]
pub struct NttTables {
    /// Ring degree (power of two).
    pub n: usize,
    /// NTT modulus (prime, q ≡ 1 mod 2n).
    pub q: u64,
    /// ψ^bitrev(i) for the forward transform.
    psi_rev: Vec<u64>,
    /// ψ^{-bitrev(i)} for the inverse transform.
    psi_inv_rev: Vec<u64>,
    /// n^{-1} mod q for the inverse scaling.
    n_inv: u64,
}

impl NttTables {
    /// Builds tables for degree `n` (power of two) and prime `q ≡ 1 mod 2n`.
    pub fn new(n: usize, q: u64) -> Self {
        assert!(n.is_power_of_two(), "NTT size must be a power of two");
        assert_eq!((q - 1) % (2 * n as u64), 0, "q must be 1 mod 2n");
        let psi = find_primitive_root(n, q);
        let psi_inv = inv_mod(psi, q);
        let bits = n.trailing_zeros();
        let mut psi_rev = vec![0u64; n];
        let mut psi_inv_rev = vec![0u64; n];
        let mut pow = 1u64;
        let mut pow_inv = 1u64;
        let mut psi_powers = vec![0u64; n];
        let mut psi_inv_powers = vec![0u64; n];
        for i in 0..n {
            psi_powers[i] = pow;
            psi_inv_powers[i] = pow_inv;
            pow = mul_mod(pow, psi, q);
            pow_inv = mul_mod(pow_inv, psi_inv, q);
        }
        for i in 0..n {
            psi_rev[i] = psi_powers[bit_reverse(i, bits)];
            psi_inv_rev[i] = psi_inv_powers[bit_reverse(i, bits)];
        }
        NttTables {
            n,
            q,
            psi_rev,
            psi_inv_rev,
            n_inv: inv_mod(n as u64, q),
        }
    }

    /// In-place forward negacyclic NTT.
    pub fn forward(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let q = self.q;
        let mut t = self.n;
        let mut m = 1;
        while m < self.n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let j2 = j1 + t;
                let s = self.psi_rev[m + i];
                for j in j1..j2 {
                    let u = a[j];
                    let v = mul_mod(a[j + t], s, q);
                    a[j] = add_mod(u, v, q);
                    a[j + t] = sub_mod(u, v, q);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT.
    pub fn inverse(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.n);
        let q = self.q;
        let mut t = 1;
        let mut m = self.n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let j2 = j1 + t;
                let s = self.psi_inv_rev[h + i];
                for j in j1..j2 {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = add_mod(u, v, q);
                    a[j + t] = mul_mod(sub_mod(u, v, q), s, q);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = mul_mod(*x, self.n_inv, q);
        }
    }

    /// Negacyclic polynomial multiplication via NTT.
    pub fn multiply(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(fb.iter()) {
            *x = mul_mod(*x, *y, self.q);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Schoolbook negacyclic multiplication (reference implementation for tests).
pub fn negacyclic_mul_schoolbook(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    let n = a.len();
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = mul_mod(ai, bj, q);
            let idx = i + j;
            if idx < n {
                out[idx] = add_mod(out[idx], prod, q);
            } else {
                // x^n = -1
                out[idx - n] = sub_mod(out[idx - n], prod, q);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn u64_primality() {
        assert!(is_prime_u64(2));
        assert!(is_prime_u64(1_000_000_007));
        assert!(is_prime_u64(0xFFFF_FFFF_FFFF_FFC5)); // largest 64-bit prime
        assert!(!is_prime_u64(1));
        assert!(!is_prime_u64(1_000_000_007 * 3));
    }

    #[test]
    fn ntt_prime_has_right_form() {
        let q = find_ntt_prime(1024, 1 << 61);
        assert!(is_prime_u64(q));
        assert_eq!((q - 1) % 2048, 0);
        assert!(q >= 1 << 61);
    }

    #[test]
    fn primitive_root_has_order_2n() {
        let n = 256;
        let q = find_ntt_prime(n, 1 << 30);
        let psi = find_primitive_root(n, q);
        assert_eq!(pow_mod(psi, 2 * n as u64, q), 1);
        assert_eq!(pow_mod(psi, n as u64, q), q - 1);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 512;
        let q = find_ntt_prime(n, 1 << 40);
        let tables = NttTables::new(n, q);
        let mut rng = rand::thread_rng();
        let original: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
        let mut transformed = original.clone();
        tables.forward(&mut transformed);
        assert_ne!(transformed, original);
        tables.inverse(&mut transformed);
        assert_eq!(transformed, original);
    }

    #[test]
    fn ntt_multiplication_matches_schoolbook() {
        let n = 64;
        let q = find_ntt_prime(n, 1 << 30);
        let tables = NttTables::new(n, q);
        let mut rng = rand::thread_rng();
        for _ in 0..5 {
            let a: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            assert_eq!(
                tables.multiply(&a, &b),
                negacyclic_mul_schoolbook(&a, &b, q)
            );
        }
    }

    #[test]
    fn multiplying_by_x_rotates_negacyclically() {
        let n = 8;
        let q = find_ntt_prime(n, 1 << 20);
        let tables = NttTables::new(n, q);
        let a: Vec<u64> = (1..=n as u64).collect();
        let mut x = vec![0u64; n];
        x[1] = 1; // the monomial x
        let result = tables.multiply(&a, &x);
        // a * x = -a_{n-1} + a_0 x + a_1 x^2 + ...
        assert_eq!(result[0], q - a[n - 1]);
        assert_eq!(&result[1..], &a[..n - 1]);
    }

    #[test]
    fn modular_helpers() {
        let q = 17;
        assert_eq!(add_mod(16, 5, q), 4);
        assert_eq!(sub_mod(3, 5, q), 15);
        assert_eq!(mul_mod(7, 9, q), 63 % 17);
        assert_eq!(pow_mod(3, 16, 17), 1); // Fermat
        assert_eq!(mul_mod(inv_mod(5, q), 5, q), 1);
    }
}
