//! Ring-LWE additively homomorphic encryption ("XPIR-BV", paper §4.1).
//!
//! Pretzel replaces the Baseline's Paillier cryptosystem with the additively
//! homomorphic scheme of Brakerski and Vaikuntanathan as implemented in the
//! XPIR system. The pay-off (Figure 6) is that Enc/Dec drop from hundreds of
//! microseconds to tens of microseconds, at the cost of much larger
//! ciphertexts — which Pretzel then exploits with packing (§4.2): a single
//! ciphertext holds `n` plaintext *slots* (polynomial coefficients), and the
//! across-row packing technique rotates slots with cheap monomial
//! multiplications ("left shift and add", Figure 6's last microbenchmark row).
//!
//! Scheme outline (BGV-style encoding with the message in the low bits):
//!
//! * Ring: `R_q = Z_q\[x\]/(x^n + 1)`, `n` a power of two, `q ≡ 1 (mod 2n)` a
//!   prime chosen for NTT-friendliness.
//! * Plaintext space: `R_t` with `t = 2^{plain_bits}`; each of the `n`
//!   coefficients is one packing slot.
//! * Keys: secret `s` ternary; public key `(pk0, pk1) = (−(a·s) + t·e, a)`.
//! * `Enc(m) = (pk0·u + t·e1 + m, pk1·u + t·e2)` with ternary `u`.
//! * `Dec(c) = ((c0 + c1·s mod q) centered) mod t`.
//! * Addition is component-wise; multiplying by an integer scalar multiplies
//!   both components; multiplying by the monomial `x^{-k}` rotates slots
//!   left by `k` (used by §4.2 packing and the Figure 5 candidate-topic
//!   protocol).

#![warn(missing_docs)]

pub mod ntt;

use std::sync::Arc;

use rand::Rng;

use ntt::{add_mod, find_ntt_prime, mul_mod, sub_mod, NttTables};
use pretzel_primitives::Prg;

/// Errors from RLWE operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RlweError {
    /// Plaintext slot value does not fit in the plaintext modulus.
    SlotOutOfRange {
        /// Index of the offending slot.
        slot: usize,
        /// The out-of-range value supplied for it.
        value: u64,
    },
    /// Too many slots supplied for the ring degree.
    TooManySlots {
        /// Number of slot values supplied.
        given: usize,
        /// Ring degree (maximum slots per ciphertext).
        max: usize,
    },
    /// Ciphertext bytes could not be parsed.
    Malformed,
    /// Parameters of two operands do not match.
    ParameterMismatch,
}

impl std::fmt::Display for RlweError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RlweError::SlotOutOfRange { slot, value } => {
                write!(f, "slot {slot} value {value} exceeds plaintext modulus")
            }
            RlweError::TooManySlots { given, max } => {
                write!(f, "{given} slots supplied but the ring only has {max}")
            }
            RlweError::Malformed => write!(f, "malformed ciphertext"),
            RlweError::ParameterMismatch => write!(f, "mismatched RLWE parameters"),
        }
    }
}

impl std::error::Error for RlweError {}

/// Public parameters of the XPIR-BV scheme.
#[derive(Clone, Debug)]
pub struct Params {
    /// Ring degree = number of packing slots per ciphertext (paper: p = 1024).
    pub n: usize,
    /// Ciphertext modulus (NTT-friendly prime).
    pub q: u64,
    /// Plaintext modulus `t = 2^plain_bits`; each slot holds `plain_bits` bits.
    pub t: u64,
    /// log2(t).
    pub plain_bits: u32,
    /// Centered-binomial noise parameter (number of coin pairs).
    pub noise_k: u32,
    tables: Arc<NttTables>,
}

impl PartialEq for Params {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.q == other.q && self.t == other.t
    }
}
impl Eq for Params {}

impl Params {
    /// Builds parameters with ring degree `n` (power of two) and
    /// `plain_bits`-bit slots. The ciphertext modulus is the smallest
    /// NTT-friendly prime above 2^61, giving ~16 KB ciphertexts at n = 1024 —
    /// the size the paper quotes for XPIR-BV.
    pub fn new(n: usize, plain_bits: u32) -> Self {
        assert!(n.is_power_of_two(), "ring degree must be a power of two");
        assert!(
            (8..=48).contains(&plain_bits),
            "plaintext modulus must be between 2^8 and 2^48"
        );
        let q = find_ntt_prime(n, 1 << 61);
        let tables = Arc::new(NttTables::new(n, q));
        Params {
            n,
            q,
            t: 1u64 << plain_bits,
            plain_bits,
            noise_k: 8,
            tables,
        }
    }

    /// The parameters used throughout the Pretzel evaluation: 1024 slots of
    /// 32 bits (enough for `b = log L + b_in + f_in` with the paper's feature
    /// counts and quantization).
    pub fn pretzel_default() -> Self {
        Self::new(1024, 32)
    }

    /// Number of packing slots per ciphertext (the paper's `p`).
    pub fn slots(&self) -> usize {
        self.n
    }

    /// Serialized ciphertext size in bytes (two degree-n polynomials of u64).
    pub fn ciphertext_bytes(&self) -> usize {
        2 * self.n * 8
    }

    /// Remaining multiplicative noise headroom: the largest scalar `z` such
    /// that a fresh ciphertext scaled by `z` and summed `additions` times
    /// still decrypts correctly. Used by callers to validate packing
    /// parameters (`b = log L + b_in + f_in`, §4.2).
    pub fn max_scalar_budget(&self, additions: u64) -> u64 {
        // Fresh noise per coefficient is bounded by roughly
        // noise_k * (2n + 1); require t * noise * z * additions < q / 4.
        let fresh = (self.noise_k as u64) * (2 * self.n as u64 + 1);
        let budget = self.q / 4 / self.t / fresh.max(1) / additions.max(1);
        budget.max(1)
    }
}

/// A plaintext: up to `n` slot values, each `< t`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plaintext {
    coeffs: Vec<u64>,
}

impl Plaintext {
    /// Encodes slot values (length ≤ n); missing slots are zero.
    pub fn encode(params: &Params, slots: &[u64]) -> Result<Self, RlweError> {
        if slots.len() > params.n {
            return Err(RlweError::TooManySlots {
                given: slots.len(),
                max: params.n,
            });
        }
        for (i, &v) in slots.iter().enumerate() {
            if v >= params.t {
                return Err(RlweError::SlotOutOfRange { slot: i, value: v });
            }
        }
        let mut coeffs = vec![0u64; params.n];
        coeffs[..slots.len()].copy_from_slice(slots);
        Ok(Plaintext { coeffs })
    }

    /// Decodes back to slot values.
    pub fn slots(&self) -> &[u64] {
        &self.coeffs
    }
}

/// Secret key: the ternary polynomial `s` (kept in the NTT domain).
#[derive(Clone)]
pub struct SecretKey {
    params: Params,
    s_ntt: Vec<u64>,
}

/// Public key `(pk0, pk1)` (kept in the NTT domain for fast encryption).
#[derive(Clone)]
pub struct PublicKey {
    params: Params,
    pk0_ntt: Vec<u64>,
    pk1_ntt: Vec<u64>,
}

/// An RLWE ciphertext `(c0, c1)`, stored in the coefficient domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext {
    c0: Vec<u64>,
    c1: Vec<u64>,
}

impl Ciphertext {
    /// Serializes to little-endian bytes (c0 then c1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((self.c0.len() + self.c1.len()) * 8);
        for v in self.c0.iter().chain(self.c1.iter()) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes from bytes produced by [`Ciphertext::to_bytes`].
    pub fn from_bytes(params: &Params, bytes: &[u8]) -> Result<Self, RlweError> {
        if bytes.len() != params.ciphertext_bytes() {
            return Err(RlweError::Malformed);
        }
        let mut values = Vec::with_capacity(2 * params.n);
        for chunk in bytes.chunks_exact(8) {
            values.push(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let c1 = values.split_off(params.n);
        Ok(Ciphertext { c0: values, c1 })
    }
}

/// Samples a ternary polynomial with coefficients in {-1, 0, 1} (represented
/// mod q).
fn sample_ternary<R: Rng + ?Sized>(params: &Params, rng: &mut R) -> Vec<u64> {
    (0..params.n)
        .map(|_| match rng.gen_range(0..3u8) {
            0 => 0,
            1 => 1,
            _ => params.q - 1,
        })
        .collect()
}

/// Samples centered-binomial noise with parameter `noise_k` (mod q).
fn sample_noise<R: Rng + ?Sized>(params: &Params, rng: &mut R) -> Vec<u64> {
    (0..params.n)
        .map(|_| {
            let mut acc: i64 = 0;
            for _ in 0..params.noise_k {
                acc += rng.gen_range(0..2) as i64;
                acc -= rng.gen_range(0..2) as i64;
            }
            if acc >= 0 {
                acc as u64
            } else {
                params.q - (-acc) as u64
            }
        })
        .collect()
}

/// Expands a 32-byte seed into a uniform polynomial (the shared "a" of the
/// public key). Both parties contributing to this seed is Pretzel's defense
/// against adversarial AHE parameter generation (§3.3, footnote 3).
pub fn expand_uniform_poly(params: &Params, seed: &[u8; 32]) -> Vec<u64> {
    let mut prg = Prg::new(seed);
    let mut out = Vec::with_capacity(params.n);
    let zone = params.q * (u64::MAX / params.q);
    while out.len() < params.n {
        let v = prg.next_u64();
        // Rejection sample into [0, q) to keep the distribution uniform.
        if v < zone {
            out.push(v % params.q);
        }
    }
    out
}

/// Generates a key pair. If `seed_for_a` is provided, the public polynomial
/// `a` is derived deterministically from it (joint-randomness defense);
/// otherwise it is sampled from the supplied RNG.
pub fn keygen<R: Rng + ?Sized>(
    params: &Params,
    seed_for_a: Option<&[u8; 32]>,
    rng: &mut R,
) -> (SecretKey, PublicKey) {
    let tables = &params.tables;
    let q = params.q;

    let mut s = sample_ternary(params, rng);
    let e = sample_noise(params, rng);

    let a = match seed_for_a {
        Some(seed) => expand_uniform_poly(params, seed),
        None => (0..params.n).map(|_| rng.gen_range(0..q)).collect(),
    };

    // pk0 = -(a*s) + t*e ; computed via NTT.
    let mut a_ntt = a.clone();
    tables.forward(&mut a_ntt);
    tables.forward(&mut s);
    let s_ntt = s;
    let mut as_prod: Vec<u64> = a_ntt
        .iter()
        .zip(s_ntt.iter())
        .map(|(&x, &y)| mul_mod(x, y, q))
        .collect();
    tables.inverse(&mut as_prod);
    let pk0: Vec<u64> = as_prod
        .iter()
        .zip(e.iter())
        .map(|(&as_i, &e_i)| {
            let te = mul_mod(params.t % q, e_i, q);
            add_mod(sub_mod(0, as_i, q), te, q)
        })
        .collect();

    let mut pk0_ntt = pk0;
    tables.forward(&mut pk0_ntt);

    (
        SecretKey {
            params: params.clone(),
            s_ntt,
        },
        PublicKey {
            params: params.clone(),
            pk0_ntt,
            pk1_ntt: a_ntt,
        },
    )
}

impl PublicKey {
    /// Scheme parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Serializes the public key (pk0 then pk1, NTT domain, little-endian).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 * self.params.n * 8);
        for v in self.pk0_ntt.iter().chain(self.pk1_ntt.iter()) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes a public key produced by [`PublicKey::to_bytes`] under
    /// the given parameters.
    pub fn from_bytes(params: &Params, bytes: &[u8]) -> Result<Self, RlweError> {
        if bytes.len() != 2 * params.n * 8 {
            return Err(RlweError::Malformed);
        }
        let mut values = Vec::with_capacity(2 * params.n);
        for chunk in bytes.chunks_exact(8) {
            values.push(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let pk1_ntt = values.split_off(params.n);
        Ok(PublicKey {
            params: params.clone(),
            pk0_ntt: values,
            pk1_ntt,
        })
    }

    /// Encrypts a plaintext.
    pub fn encrypt<R: Rng + ?Sized>(&self, pt: &Plaintext, rng: &mut R) -> Ciphertext {
        let params = &self.params;
        let tables = &params.tables;
        let q = params.q;

        let mut u = sample_ternary(params, rng);
        tables.forward(&mut u);
        let e1 = sample_noise(params, rng);
        let e2 = sample_noise(params, rng);

        // c0 = pk0*u + t*e1 + m
        let mut c0: Vec<u64> = self
            .pk0_ntt
            .iter()
            .zip(u.iter())
            .map(|(&p, &uu)| mul_mod(p, uu, q))
            .collect();
        tables.inverse(&mut c0);
        for i in 0..params.n {
            let te = mul_mod(params.t % q, e1[i], q);
            c0[i] = add_mod(add_mod(c0[i], te, q), pt.coeffs[i] % q, q);
        }

        // c1 = pk1*u + t*e2
        let mut c1: Vec<u64> = self
            .pk1_ntt
            .iter()
            .zip(u.iter())
            .map(|(&p, &uu)| mul_mod(p, uu, q))
            .collect();
        tables.inverse(&mut c1);
        for i in 0..params.n {
            let te = mul_mod(params.t % q, e2[i], q);
            c1[i] = add_mod(c1[i], te, q);
        }

        Ciphertext { c0, c1 }
    }

    /// Encrypts raw slot values.
    pub fn encrypt_slots<R: Rng + ?Sized>(
        &self,
        slots: &[u64],
        rng: &mut R,
    ) -> Result<Ciphertext, RlweError> {
        let pt = Plaintext::encode(&self.params, slots)?;
        Ok(self.encrypt(&pt, rng))
    }

    /// Homomorphic addition of two ciphertexts.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let q = self.params.q;
        Ciphertext {
            c0: a
                .c0
                .iter()
                .zip(b.c0.iter())
                .map(|(&x, &y)| add_mod(x, y, q))
                .collect(),
            c1: a
                .c1
                .iter()
                .zip(b.c1.iter())
                .map(|(&x, &y)| add_mod(x, y, q))
                .collect(),
        }
    }

    /// In-place homomorphic addition (avoids an allocation in the dot-product
    /// inner loop, which Figure 7's client CPU column is sensitive to).
    pub fn add_assign(&self, acc: &mut Ciphertext, other: &Ciphertext) {
        let q = self.params.q;
        for (x, &y) in acc.c0.iter_mut().zip(other.c0.iter()) {
            *x = add_mod(*x, y, q);
        }
        for (x, &y) in acc.c1.iter_mut().zip(other.c1.iter()) {
            *x = add_mod(*x, y, q);
        }
    }

    /// Homomorphic addition of a plaintext (used for blinding, Figure 2
    /// step 2, bullet 2).
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let q = self.params.q;
        let mut out = a.clone();
        for (x, &m) in out.c0.iter_mut().zip(pt.coeffs.iter()) {
            *x = add_mod(*x, m % q, q);
        }
        out
    }

    /// Homomorphic multiplication by an integer scalar (the `x_i · Enc(v_i)`
    /// step of GLLM).
    pub fn mul_scalar(&self, a: &Ciphertext, scalar: u64) -> Ciphertext {
        let q = self.params.q;
        let s = scalar % q;
        Ciphertext {
            c0: a.c0.iter().map(|&x| mul_mod(x, s, q)).collect(),
            c1: a.c1.iter().map(|&x| mul_mod(x, s, q)).collect(),
        }
    }

    /// Fused multiply-accumulate: `acc += scalar * a`. This is the hot loop
    /// of the per-email secure dot product.
    pub fn mul_scalar_accumulate(&self, acc: &mut Ciphertext, a: &Ciphertext, scalar: u64) {
        let q = self.params.q;
        let s = scalar % q;
        for (x, &y) in acc.c0.iter_mut().zip(a.c0.iter()) {
            *x = add_mod(*x, mul_mod(y, s, q), q);
        }
        for (x, &y) in acc.c1.iter_mut().zip(a.c1.iter()) {
            *x = add_mod(*x, mul_mod(y, s, q), q);
        }
    }

    /// Rotates the packed slots left by `k` positions ("left shift", §4.2):
    /// slot `i` of the result holds slot `i + k` of the input. Slots that wrap
    /// around carry a sign flip modulo `t`; Pretzel only ever reads the
    /// non-wrapped region, exactly as the paper's across-row packing does.
    ///
    /// Implemented as multiplication by the monomial `x^{-k}`, which costs a
    /// coefficient permutation and no noise growth.
    pub fn rotate_left(&self, a: &Ciphertext, k: usize) -> Ciphertext {
        let n = self.params.n;
        let q = self.params.q;
        let k = k % n;
        if k == 0 {
            return a.clone();
        }
        let rotate = |poly: &[u64]| -> Vec<u64> {
            let mut out = vec![0u64; n];
            for (i, slot) in out.iter_mut().enumerate() {
                let src = (i + k) % n;
                let wrapped = i + k >= n;
                *slot = if wrapped {
                    sub_mod(0, poly[src], q)
                } else {
                    poly[src]
                };
            }
            out
        };
        Ciphertext {
            c0: rotate(&a.c0),
            c1: rotate(&a.c1),
        }
    }

    /// Encryption of the all-zero plaintext (fresh randomness).
    pub fn encrypt_zero<R: Rng + ?Sized>(&self, rng: &mut R) -> Ciphertext {
        self.encrypt(&Plaintext::encode(&self.params, &[]).unwrap(), rng)
    }

    /// A "trivial" (noiseless, non-hiding) encryption of zero, useful as the
    /// accumulator seed of a dot product. Adding real ciphertexts to it makes
    /// the result a proper encryption.
    pub fn zero_accumulator(&self) -> Ciphertext {
        Ciphertext {
            c0: vec![0u64; self.params.n],
            c1: vec![0u64; self.params.n],
        }
    }
}

impl SecretKey {
    /// Scheme parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Decrypts a ciphertext to its plaintext slots.
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let params = &self.params;
        let tables = &params.tables;
        let q = params.q;
        // c0 + c1 * s
        let mut c1s = ct.c1.clone();
        tables.forward(&mut c1s);
        for (x, &s) in c1s.iter_mut().zip(self.s_ntt.iter()) {
            *x = mul_mod(*x, s, q);
        }
        tables.inverse(&mut c1s);
        let mut coeffs = vec![0u64; params.n];
        for i in 0..params.n {
            let v = add_mod(ct.c0[i], c1s[i], q);
            // Center to (-q/2, q/2], then reduce mod t into [0, t).
            let signed: i128 = if v > q / 2 {
                v as i128 - q as i128
            } else {
                v as i128
            };
            let t = params.t as i128;
            coeffs[i] = (((signed % t) + t) % t) as u64;
        }
        Plaintext { coeffs }
    }

    /// Decrypts and returns the slot values.
    pub fn decrypt_slots(&self, ct: &Ciphertext) -> Vec<u64> {
        self.decrypt(ct).coeffs
    }

    /// Estimates the remaining noise budget in bits (log2 of q / (2·|noise|)),
    /// given the expected plaintext. Returns 0 when decryption is (close to)
    /// failing; 64 when the ciphertext is noiseless.
    pub fn noise_budget_bits(&self, ct: &Ciphertext, expected: &Plaintext) -> u32 {
        let params = &self.params;
        let tables = &params.tables;
        let q = params.q;
        let mut c1s = ct.c1.clone();
        tables.forward(&mut c1s);
        for (x, &s) in c1s.iter_mut().zip(self.s_ntt.iter()) {
            *x = mul_mod(*x, s, q);
        }
        tables.inverse(&mut c1s);
        let mut max_noise: u128 = 0;
        for ((&c0, &c1), &exp) in ct.c0.iter().zip(&c1s).zip(&expected.coeffs) {
            let v = add_mod(c0, c1, q);
            let signed: i128 = if v > q / 2 {
                v as i128 - q as i128
            } else {
                v as i128
            };
            let noise = signed - exp as i128;
            max_noise = max_noise.max(noise.unsigned_abs());
        }
        if max_noise == 0 {
            return 64;
        }
        let budget = (q as u128 / 2) / max_noise;
        (128 - budget.leading_zeros()).saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Params {
        Params::new(256, 20)
    }

    #[test]
    fn params_report_expected_sizes() {
        let p = Params::pretzel_default();
        assert_eq!(p.slots(), 1024);
        assert_eq!(p.ciphertext_bytes(), 16 * 1024);
        assert_eq!(p.t, 1 << 32);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let slots: Vec<u64> = (0..params.n as u64).map(|i| i * 7 % params.t).collect();
        let ct = pk.encrypt_slots(&slots, &mut rng).unwrap();
        assert_eq!(sk.decrypt_slots(&ct), slots);
    }

    #[test]
    fn encryption_is_randomized() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (_, pk) = keygen(&params, None, &mut rng);
        let a = pk.encrypt_slots(&[5, 6, 7], &mut rng).unwrap();
        let b = pk.encrypt_slots(&[5, 6, 7], &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn homomorphic_addition_is_slotwise() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let a = pk.encrypt_slots(&[1, 2, 3, 4], &mut rng).unwrap();
        let b = pk.encrypt_slots(&[10, 20, 30, 40], &mut rng).unwrap();
        let sum = pk.add(&a, &b);
        assert_eq!(&sk.decrypt_slots(&sum)[..4], &[11, 22, 33, 44]);
    }

    #[test]
    fn scalar_multiplication() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let a = pk.encrypt_slots(&[3, 5, 7], &mut rng).unwrap();
        let scaled = pk.mul_scalar(&a, 9);
        assert_eq!(&sk.decrypt_slots(&scaled)[..3], &[27, 45, 63]);
    }

    #[test]
    fn fused_multiply_accumulate_matches_separate_ops() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let a = pk.encrypt_slots(&[1, 2], &mut rng).unwrap();
        let b = pk.encrypt_slots(&[10, 20], &mut rng).unwrap();
        let mut acc = pk.zero_accumulator();
        pk.mul_scalar_accumulate(&mut acc, &a, 3);
        pk.mul_scalar_accumulate(&mut acc, &b, 5);
        let expected = pk.add(&pk.mul_scalar(&a, 3), &pk.mul_scalar(&b, 5));
        assert_eq!(sk.decrypt_slots(&acc), sk.decrypt_slots(&expected));
        assert_eq!(&sk.decrypt_slots(&acc)[..2], &[53, 106]);
    }

    #[test]
    fn add_plain_blinds_slots() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let ct = pk.encrypt_slots(&[100, 200], &mut rng).unwrap();
        let blind = Plaintext::encode(&params, &[11, 22]).unwrap();
        let blinded = pk.add_plain(&ct, &blind);
        assert_eq!(&sk.decrypt_slots(&blinded)[..2], &[111, 222]);
    }

    #[test]
    fn rotate_left_moves_slots_toward_zero() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let slots: Vec<u64> = (0..params.n as u64).collect();
        let ct = pk.encrypt_slots(&slots, &mut rng).unwrap();
        let rotated = pk.rotate_left(&ct, 5);
        let dec = sk.decrypt_slots(&rotated);
        // Non-wrapped region: slot i now holds original slot i + 5.
        for (i, &d) in dec.iter().take(params.n - 5).enumerate() {
            assert_eq!(d, (i as u64) + 5);
        }
        // Rotation by zero is the identity.
        let same = pk.rotate_left(&ct, 0);
        assert_eq!(sk.decrypt_slots(&same), slots);
    }

    #[test]
    fn rotate_then_add_aligns_rows_like_pretzel_packing() {
        // Emulates §4.2: pack two "rows" of k elements into one ciphertext,
        // left-shift by k, add, and read the pairwise sums from the first k
        // slots.
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let k = 8usize;
        let row1: Vec<u64> = (1..=k as u64).collect();
        let row2: Vec<u64> = (101..=100 + k as u64).collect();
        let mut packed = row1.clone();
        packed.extend_from_slice(&row2);
        let ct = pk.encrypt_slots(&packed, &mut rng).unwrap();
        let shifted = pk.rotate_left(&ct, k);
        let sum = pk.add(&ct, &shifted);
        let dec = sk.decrypt_slots(&sum);
        for i in 0..k {
            assert_eq!(dec[i], row1[i] + row2[i]);
        }
    }

    #[test]
    fn dot_product_of_packed_columns() {
        // x · V for a matrix packed one column element per slot: exactly the
        // GLLM computation the sdp crate performs.
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let rows = 10usize;
        let cols = 4usize;
        let matrix: Vec<Vec<u64>> = (0..rows)
            .map(|i| (0..cols).map(|j| ((i * 13 + j * 7) % 50) as u64).collect())
            .collect();
        let x: Vec<u64> = (0..rows).map(|i| (i % 5) as u64).collect();
        let row_cts: Vec<Ciphertext> = matrix
            .iter()
            .map(|row| pk.encrypt_slots(row, &mut rng).unwrap())
            .collect();
        let mut acc = pk.zero_accumulator();
        for (ct, &xi) in row_cts.iter().zip(x.iter()) {
            pk.mul_scalar_accumulate(&mut acc, ct, xi);
        }
        let dec = sk.decrypt_slots(&acc);
        for j in 0..cols {
            let expected: u64 = (0..rows).map(|i| matrix[i][j] * x[i]).sum();
            assert_eq!(dec[j], expected);
        }
    }

    #[test]
    fn seeded_keygen_is_deterministic_in_a() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let seed = [9u8; 32];
        let a1 = expand_uniform_poly(&params, &seed);
        let a2 = expand_uniform_poly(&params, &seed);
        assert_eq!(a1, a2);
        let (sk, pk) = keygen(&params, Some(&seed), &mut rng);
        let ct = pk.encrypt_slots(&[42], &mut rng).unwrap();
        assert_eq!(sk.decrypt_slots(&ct)[0], 42);
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let bytes = pk.to_bytes();
        assert_eq!(bytes.len(), 2 * params.n * 8);
        let restored = PublicKey::from_bytes(&params, &bytes).unwrap();
        let ct = restored.encrypt_slots(&[13, 37], &mut rng).unwrap();
        assert_eq!(&sk.decrypt_slots(&ct)[..2], &[13, 37]);
        assert!(PublicKey::from_bytes(&params, &bytes[..10]).is_err());
    }

    #[test]
    fn serialization_roundtrip_and_size() {
        let params = small_params();
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let ct = pk.encrypt_slots(&[7, 8, 9], &mut rng).unwrap();
        let bytes = ct.to_bytes();
        assert_eq!(bytes.len(), params.ciphertext_bytes());
        let restored = Ciphertext::from_bytes(&params, &bytes).unwrap();
        assert_eq!(sk.decrypt_slots(&restored)[..3], [7, 8, 9]);
        assert!(Ciphertext::from_bytes(&params, &bytes[1..]).is_err());
    }

    #[test]
    fn slot_range_and_count_validation() {
        let params = small_params();
        assert!(matches!(
            Plaintext::encode(&params, &[params.t]),
            Err(RlweError::SlotOutOfRange { .. })
        ));
        let too_many = vec![0u64; params.n + 1];
        assert!(matches!(
            Plaintext::encode(&params, &too_many),
            Err(RlweError::TooManySlots { .. })
        ));
    }

    #[test]
    fn noise_budget_survives_a_large_dot_product() {
        // L = 2000 terms with frequencies up to 15 and 16-bit model values:
        // the spam operating point of §6.1 after quantization.
        let params = Params::new(256, 32);
        let mut rng = rand::thread_rng();
        let (sk, pk) = keygen(&params, None, &mut rng);
        let values: Vec<u64> = (0..256u64).map(|i| (i * 257) % (1 << 16)).collect();
        let ct = pk.encrypt_slots(&values, &mut rng).unwrap();
        let mut acc = pk.zero_accumulator();
        let mut expected = vec![0u64; 256];
        for l in 0..2000u64 {
            let freq = l % 15 + 1;
            pk.mul_scalar_accumulate(&mut acc, &ct, freq);
            for (e, v) in expected.iter_mut().zip(values.iter()) {
                *e = (*e + freq * v) % params.t;
            }
        }
        assert_eq!(sk.decrypt_slots(&acc), expected);
        let pt = Plaintext::encode(&params, &expected).unwrap();
        assert!(sk.noise_budget_bits(&acc, &pt) > 0);
    }
}
