//! Provider-side keyword search over encrypted email via searchable symmetric
//! encryption (SSE).
//!
//! The paper's keyword-search module (§5, Figure 15) is a purely client-side
//! inverted index; the paper notes that a *provider-side* solution — needed
//! when a user logs in from a new machine and has no local index — "could be
//! built on searchable symmetric encryption" and leaves it as future work.
//! This crate implements that extension so the repository covers it.
//!
//! The construction is a single-keyword, response-revealing-to-the-client SSE
//! scheme in the style of the classic inverted-index schemes (Curtmola et
//! al.; Cash et al.'s basic construction):
//!
//! * The client holds a 32-byte master key. For every keyword `w` it derives
//!   two subkeys with HMAC-SHA-256: a **label key** `K_l(w)` and an
//!   **encryption key** `K_e(w)`.
//! * The `c`-th email containing `w` is stored at the provider under the
//!   opaque label `HMAC(K_l(w), c)`, with value `ChaCha20(K_e(w), nonce=c)`
//!   applied to the email id. The provider sees only uniformly random-looking
//!   labels and ciphertexts.
//! * To search, the client sends `K_l(w)` and `K_e(w)` for the queried word;
//!   the provider walks `c = 0, 1, 2, …` until a label misses and returns the
//!   decrypted email ids. (Sending `K_e(w)` lets the provider decrypt the ids
//!   of *matching* emails — the same information it necessarily learns when
//!   it is asked to fetch those emails — and keeps the protocol to one round
//!   trip. A response-hiding variant that returns ciphertexts for the client
//!   to decrypt is available as [`server::EncryptedIndex::lookup_sealed`].)
//!
//! What the provider learns: the number of indexed (keyword, email) pairs,
//! the result count per query, and the access pattern across repeated
//! queries. It never learns keywords or email contents. This matches the
//! standard SSE leakage profile and is strictly less than the status quo
//! (plaintext search at the provider).
//!
//! The three pieces are:
//!
//! * [`SseClient`] — key material plus the per-keyword counters that make
//!   updates possible (client state is a few bytes per distinct keyword,
//!   far smaller than the full Figure 15 client-side index).
//! * [`EncryptedIndex`] — the provider-side store.
//! * [`SseClientEndpoint`] / [`SseProviderEndpoint`] — the two-message
//!   client/provider exchange over the same [`pretzel_transport::Channel`]
//!   abstraction the other function modules use.

#![warn(missing_docs)]

mod client;
mod protocol;
mod server;

pub use client::{SearchToken, SseClient, UpdateBatch};
pub use protocol::{SseClientEndpoint, SseProviderEndpoint};
pub use server::EncryptedIndex;

/// Identifier of an indexed email (matches `pretzel_search::DocId`).
pub type DocId = u64;

/// Errors surfaced by the SSE protocol endpoints.
#[derive(Debug)]
pub enum SseError {
    /// The underlying channel failed.
    Transport(pretzel_transport::TransportError),
    /// A peer sent a malformed message.
    Protocol(String),
}

impl std::fmt::Display for SseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SseError::Transport(e) => write!(f, "transport error: {e}"),
            SseError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for SseError {}

impl From<pretzel_transport::TransportError> for SseError {
    fn from(e: pretzel_transport::TransportError) -> Self {
        SseError::Transport(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_covers_both_variants() {
        let p = SseError::Protocol("bad".into());
        assert!(p.to_string().contains("bad"));
        let t = SseError::from(pretzel_transport::TransportError::Closed);
        assert!(t.to_string().contains("transport"));
    }
}
