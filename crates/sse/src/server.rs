//! Provider-side store of the SSE scheme: an opaque label → ciphertext map.

use std::collections::HashMap;

use crate::client::{open_doc_id, posting_label};
use crate::{DocId, SearchToken, UpdateBatch};

/// The provider's encrypted search index.
///
/// The provider only ever sees 32-byte labels and 8-byte ciphertexts, both of
/// which are indistinguishable from random without the client's keys. The
/// store therefore reveals nothing about keywords or email contents — only
/// the total number of postings (and, at query time, the per-query result
/// count and access pattern, the standard SSE leakage).
#[derive(Clone, Debug, Default)]
pub struct EncryptedIndex {
    entries: HashMap<[u8; 32], [u8; 8]>,
}

impl EncryptedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored (keyword, email) postings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no postings are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate storage the provider dedicates to the index, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * (32 + 8)
    }

    /// Merges a client upload into the index. Duplicate labels overwrite
    /// (labels are collision-free under the client's PRF, so this only
    /// happens if a client re-uploads the same batch).
    pub fn apply(&mut self, batch: &UpdateBatch) {
        for (label, value) in &batch.entries {
            self.entries.insert(*label, *value);
        }
    }

    /// Response-revealing lookup: walks the postings of the token's keyword
    /// and returns the decrypted email ids. The provider learns which stored
    /// labels belong to this (still unknown) keyword and the matching ids.
    pub fn lookup(&self, token: &SearchToken) -> Vec<DocId> {
        self.walk(token)
            .into_iter()
            .enumerate()
            .map(|(c, sealed)| open_doc_id(&token.value_key, c as u64, &sealed))
            .collect()
    }

    /// Response-hiding lookup: returns the sealed postings so that only the
    /// client (who holds the value key) can recover the email ids. Used when
    /// the query token intentionally omits the value key.
    pub fn lookup_sealed(&self, label_key: &[u8; 32]) -> Vec<[u8; 8]> {
        self.walk(&SearchToken {
            label_key: *label_key,
            value_key: [0u8; 32],
        })
    }

    fn walk(&self, token: &SearchToken) -> Vec<[u8; 8]> {
        let mut out = Vec::new();
        for counter in 0u64.. {
            let label = posting_label(&token.label_key, counter);
            match self.entries.get(&label) {
                Some(value) => out.push(*value),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SseClient;

    fn populated() -> (SseClient, EncryptedIndex) {
        let mut client = SseClient::from_master_key([11u8; 32]);
        let mut index = EncryptedIndex::new();
        index.apply(&client.index_email(1, "project pretzel kickoff agenda"));
        index.apply(&client.index_email(2, "pretzel budget spreadsheet"));
        index.apply(&client.index_email(3, "lunch menu"));
        (client, index)
    }

    #[test]
    fn lookup_returns_exactly_the_matching_emails() {
        let (client, index) = populated();
        let mut hits = index.lookup(&client.search_token("pretzel"));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(index.lookup(&client.search_token("menu")), vec![3]);
        assert!(index.lookup(&client.search_token("absent")).is_empty());
    }

    #[test]
    fn sealed_lookup_requires_the_client_to_decrypt() {
        let (client, index) = populated();
        let token = client.search_token("pretzel");
        let sealed = index.lookup_sealed(&token.label_key);
        assert_eq!(sealed.len(), 2);
        // The sealed values are not the raw ids.
        for s in &sealed {
            let as_id = DocId::from_le_bytes(*s);
            assert!(as_id != 1 && as_id != 2);
        }
        let mut opened = client.open_results("pretzel", &sealed);
        opened.sort_unstable();
        assert_eq!(opened, vec![1, 2]);
    }

    #[test]
    fn a_wrong_key_finds_nothing() {
        let (_, index) = populated();
        let other_client = SseClient::from_master_key([12u8; 32]);
        assert!(index
            .lookup(&other_client.search_token("pretzel"))
            .is_empty());
    }

    #[test]
    fn size_accounting_tracks_postings() {
        let (_, index) = populated();
        assert_eq!(index.size_bytes(), index.len() * 40);
        assert!(!index.is_empty());
        assert_eq!(EncryptedIndex::new().size_bytes(), 0);
    }

    #[test]
    fn reapplying_the_same_batch_is_idempotent() {
        let mut client = SseClient::from_master_key([13u8; 32]);
        let batch = client.index_email(7, "hello world");
        let mut index = EncryptedIndex::new();
        index.apply(&batch);
        let before = index.len();
        index.apply(&batch);
        assert_eq!(index.len(), before);
    }
}
