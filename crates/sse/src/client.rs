//! Client side of the SSE scheme: key material, per-keyword counters,
//! document indexing, and search-token generation.

use std::collections::HashMap;

use pretzel_classifiers::Tokenizer;
use pretzel_primitives::hmac_sha256;
use rand::Rng;

use crate::DocId;

/// Opaque per-keyword search token handed to the provider.
///
/// Holding a token for keyword `w` allows the provider to find (and decrypt
/// the ids of) every indexed email containing `w` — and nothing else. Tokens
/// for different keywords are unlinkable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchToken {
    /// Key used to derive the storage labels of `w`'s postings.
    pub label_key: [u8; 32],
    /// Key used to decrypt the email ids stored in `w`'s postings.
    pub value_key: [u8; 32],
}

/// A batch of encrypted index entries ready to upload to the provider.
///
/// Each entry is `(label, encrypted email id)`; labels and ciphertexts look
/// uniformly random to the provider.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    /// Encrypted postings produced by [`SseClient::index_email`].
    pub entries: Vec<([u8; 32], [u8; 8])>,
}

impl UpdateBatch {
    /// Number of (keyword, email) postings in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the batch carries no postings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the batch for transmission: a `u64` little-endian posting
    /// count followed by 40 bytes (32-byte label + 8-byte sealed id) per
    /// posting. The single wire format shared by the bare SSE endpoints and
    /// the mailroom-served search protocol.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.entries.len() * 40);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for (label, value) in &self.entries {
            out.extend_from_slice(label);
            out.extend_from_slice(value);
        }
        out
    }

    /// Parses bytes produced by [`UpdateBatch::to_wire_bytes`], rejecting
    /// truncated headers and any mismatch between the claimed count and the
    /// payload length (the count is attacker-controlled, so the comparison
    /// is done without multiplying it).
    pub fn from_wire_bytes(bytes: &[u8]) -> crate::Result<Self> {
        if bytes.len() < 8 {
            return Err(crate::SseError::Protocol("truncated upload header".into()));
        }
        let count = u64::from_le_bytes(bytes[..8].try_into().expect("checked length"));
        let entries_bytes = &bytes[8..];
        if !entries_bytes.len().is_multiple_of(40) || (entries_bytes.len() / 40) as u64 != count {
            return Err(crate::SseError::Protocol("upload length mismatch".into()));
        }
        let mut batch = UpdateBatch::default();
        batch.entries.reserve(entries_bytes.len() / 40);
        for chunk in entries_bytes.chunks_exact(40) {
            let mut label = [0u8; 32];
            label.copy_from_slice(&chunk[..32]);
            let mut value = [0u8; 8];
            value.copy_from_slice(&chunk[32..]);
            batch.entries.push((label, value));
        }
        Ok(batch)
    }
}

/// Client state of the SSE scheme.
///
/// The state is the 32-byte master key plus one counter per distinct keyword
/// ever indexed. Compared to the fully client-side index of
/// [`pretzel_search::SearchIndex`], this is what lets a user search from a
/// new device after re-deriving (or syncing) only the master key and the
/// counters.
#[derive(Clone, Debug)]
pub struct SseClient {
    master_key: [u8; 32],
    /// keyword → number of postings already uploaded for it.
    counters: HashMap<String, u64>,
    tokenizer: Tokenizer,
}

impl SseClient {
    /// Creates a client with a freshly sampled master key.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_master_key(rng.gen())
    }

    /// Creates a client from an existing master key (e.g. synced from another
    /// device, or derived from the user's e2e key material via HKDF).
    pub fn from_master_key(master_key: [u8; 32]) -> Self {
        SseClient {
            master_key,
            counters: HashMap::new(),
            tokenizer: Tokenizer::new(),
        }
    }

    /// The master key (so a caller can persist or sync it).
    pub fn master_key(&self) -> &[u8; 32] {
        &self.master_key
    }

    /// Number of distinct keywords indexed so far.
    pub fn distinct_keywords(&self) -> usize {
        self.counters.len()
    }

    /// Total number of postings uploaded so far.
    pub fn total_postings(&self) -> u64 {
        self.counters.values().sum()
    }

    /// Derives the per-keyword search token.
    pub fn search_token(&self, keyword: &str) -> SearchToken {
        let normalized = normalize(keyword);
        SearchToken {
            label_key: self.subkey(b"label", &normalized),
            value_key: self.subkey(b"value", &normalized),
        }
    }

    /// Indexes a decrypted email body under `doc_id`, producing the encrypted
    /// postings to upload. Each distinct keyword of the body contributes one
    /// posting. Indexing the same body twice produces fresh postings (the
    /// scheme is append-only, like the paper's client-side index which never
    /// removes emails either).
    pub fn index_email(&mut self, doc_id: DocId, body: &str) -> UpdateBatch {
        let mut keywords = self.tokenizer.tokenize(body);
        keywords.sort();
        keywords.dedup();

        let mut entries = Vec::with_capacity(keywords.len());
        for keyword in keywords {
            let token = self.search_token(&keyword);
            let counter = self.counters.entry(keyword).or_insert(0);
            entries.push((
                posting_label(&token.label_key, *counter),
                seal_doc_id(&token.value_key, *counter, doc_id),
            ));
            *counter += 1;
        }
        UpdateBatch { entries }
    }

    /// Decrypts the sealed postings returned by a response-hiding lookup
    /// ([`crate::EncryptedIndex::lookup_sealed`]).
    pub fn open_results(&self, keyword: &str, sealed: &[[u8; 8]]) -> Vec<DocId> {
        let token = self.search_token(keyword);
        sealed
            .iter()
            .enumerate()
            .map(|(c, ct)| open_doc_id(&token.value_key, c as u64, ct))
            .collect()
    }

    fn subkey(&self, purpose: &[u8], keyword: &str) -> [u8; 32] {
        let mut data = Vec::with_capacity(purpose.len() + 1 + keyword.len());
        data.extend_from_slice(purpose);
        data.push(0);
        data.extend_from_slice(keyword.as_bytes());
        hmac_sha256(&self.master_key, &data)
    }
}

/// Normalizes a query keyword the same way indexing does.
fn normalize(keyword: &str) -> String {
    keyword.trim().to_lowercase()
}

/// Label of the `counter`-th posting for a keyword, given its label key.
pub(crate) fn posting_label(label_key: &[u8; 32], counter: u64) -> [u8; 32] {
    hmac_sha256(label_key, &counter.to_le_bytes())
}

/// Encrypts a document id for the `counter`-th posting of a keyword.
pub(crate) fn seal_doc_id(value_key: &[u8; 32], counter: u64, doc_id: DocId) -> [u8; 8] {
    let pad = hmac_sha256(value_key, &[&counter.to_le_bytes()[..], b"pad"].concat());
    let mut out = doc_id.to_le_bytes();
    for (o, p) in out.iter_mut().zip(pad.iter()) {
        *o ^= p;
    }
    out
}

/// Inverse of [`seal_doc_id`].
pub(crate) fn open_doc_id(value_key: &[u8; 32], counter: u64, sealed: &[u8; 8]) -> DocId {
    let pad = hmac_sha256(value_key, &[&counter.to_le_bytes()[..], b"pad"].concat());
    let mut out = *sealed;
    for (o, p) in out.iter_mut().zip(pad.iter()) {
        *o ^= p;
    }
    DocId::from_le_bytes(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sealing_roundtrips() {
        let key = [9u8; 32];
        for doc in [0u64, 1, 42, u64::MAX] {
            for counter in [0u64, 1, 1000] {
                let sealed = seal_doc_id(&key, counter, doc);
                assert_eq!(open_doc_id(&key, counter, &sealed), doc);
                assert_ne!(
                    sealed,
                    doc.to_le_bytes(),
                    "ciphertext must differ from plaintext"
                );
            }
        }
    }

    #[test]
    fn tokens_are_deterministic_and_keyword_specific() {
        let client = SseClient::from_master_key([3u8; 32]);
        assert_eq!(client.search_token("hello"), client.search_token("hello"));
        assert_eq!(client.search_token("Hello "), client.search_token("hello"));
        assert_ne!(client.search_token("hello"), client.search_token("world"));
        assert_ne!(
            client.search_token("hello").label_key,
            client.search_token("hello").value_key
        );
    }

    #[test]
    fn different_master_keys_produce_unrelated_tokens() {
        let a = SseClient::from_master_key([1u8; 32]);
        let b = SseClient::from_master_key([2u8; 32]);
        assert_ne!(a.search_token("invoice"), b.search_token("invoice"));
    }

    #[test]
    fn indexing_counts_distinct_keywords_once_per_email() {
        let mut client = SseClient::from_master_key([7u8; 32]);
        let batch = client.index_email(1, "the quarterly report report report");
        // Tokenizer drops short tokens ("the" stays: len >= 2), dedup keeps one
        // posting per distinct keyword.
        assert_eq!(batch.len(), 3);
        assert_eq!(client.total_postings(), 3);
        assert_eq!(client.distinct_keywords(), 3);

        let batch2 = client.index_email(2, "report");
        assert_eq!(batch2.len(), 1);
        assert_eq!(client.total_postings(), 4);
        assert_eq!(client.distinct_keywords(), 3);
    }

    #[test]
    fn postings_for_the_same_keyword_have_distinct_labels() {
        let mut client = SseClient::from_master_key([8u8; 32]);
        let b1 = client.index_email(1, "alpha");
        let b2 = client.index_email(2, "alpha");
        assert_ne!(b1.entries[0].0, b2.entries[0].0);
    }

    #[test]
    fn open_results_recovers_doc_ids_in_counter_order() {
        let mut client = SseClient::from_master_key([5u8; 32]);
        let docs = [10u64, 20, 30];
        let mut sealed = Vec::new();
        for &d in &docs {
            let batch = client.index_email(d, "keyword");
            sealed.push(batch.entries[0].1);
        }
        assert_eq!(client.open_results("keyword", &sealed), docs.to_vec());
    }

    proptest! {
        #[test]
        fn seal_open_roundtrip_for_random_inputs(
            key in any::<[u8; 32]>(),
            counter in any::<u64>(),
            doc in any::<u64>(),
        ) {
            let sealed = seal_doc_id(&key, counter, doc);
            prop_assert_eq!(open_doc_id(&key, counter, &sealed), doc);
        }

        #[test]
        fn labels_never_collide_across_counters(
            key in any::<[u8; 32]>(),
            c1 in 0u64..10_000,
            c2 in 0u64..10_000,
        ) {
            prop_assume!(c1 != c2);
            prop_assert_ne!(posting_label(&key, c1), posting_label(&key, c2));
        }
    }
}
