//! Two-party wiring of the SSE scheme over the transport abstraction.
//!
//! The exchange is deliberately simple — the privacy comes from what the
//! messages contain (opaque labels and ciphertexts), not from the transport:
//!
//! * `UPLOAD`: client → provider, a batch of `(label, sealed id)` postings.
//! * `SEARCH`: client → provider, a per-keyword token; provider → client,
//!   the matching email ids.
//! * `CLOSE`: client → provider, ends the session.
//!
//! Wire format: one length-prefixed message per step (the `Channel` trait
//! already frames messages); the first byte is the message tag.

use pretzel_transport::Channel;

use crate::client::{SearchToken, SseClient, UpdateBatch};
use crate::server::EncryptedIndex;
use crate::{DocId, Result, SseError};

const TAG_UPLOAD: u8 = 0;
const TAG_SEARCH: u8 = 1;
const TAG_CLOSE: u8 = 2;

/// Client endpoint: wraps an [`SseClient`] and a channel to the provider.
pub struct SseClientEndpoint {
    state: SseClient,
}

impl SseClientEndpoint {
    /// Wraps existing client state.
    pub fn new(state: SseClient) -> Self {
        SseClientEndpoint { state }
    }

    /// Access to the underlying client state (keys and counters).
    pub fn state(&self) -> &SseClient {
        &self.state
    }

    /// Indexes an email and uploads its postings to the provider.
    pub fn index_and_upload<C: Channel>(
        &mut self,
        channel: &mut C,
        doc_id: DocId,
        body: &str,
    ) -> Result<usize> {
        let batch = self.state.index_email(doc_id, body);
        let mut msg = Vec::with_capacity(1 + 8 + batch.len() * 40);
        msg.push(TAG_UPLOAD);
        msg.extend_from_slice(&batch.to_wire_bytes());
        channel.send(&msg)?;
        Ok(batch.len())
    }

    /// Searches for a keyword at the provider and returns the matching email
    /// ids.
    pub fn search<C: Channel>(&self, channel: &mut C, keyword: &str) -> Result<Vec<DocId>> {
        let token = self.state.search_token(keyword);
        let mut msg = Vec::with_capacity(1 + 64);
        msg.push(TAG_SEARCH);
        msg.extend_from_slice(&token.label_key);
        msg.extend_from_slice(&token.value_key);
        channel.send(&msg)?;

        let reply = channel.recv()?;
        if reply.len() < 8 || (reply.len() - 8) % 8 != 0 {
            return Err(SseError::Protocol("malformed search reply".into()));
        }
        let count = u64::from_le_bytes(reply[..8].try_into().expect("checked length")) as usize;
        if reply.len() != 8 + count * 8 {
            return Err(SseError::Protocol("search reply length mismatch".into()));
        }
        Ok(reply[8..]
            .chunks_exact(8)
            .map(|c| DocId::from_le_bytes(c.try_into().expect("chunked by 8")))
            .collect())
    }

    /// Tells the provider the session is over.
    pub fn close<C: Channel>(&self, channel: &mut C) -> Result<()> {
        channel.send(&[TAG_CLOSE])?;
        Ok(())
    }
}

/// Provider endpoint: owns the encrypted index and serves client requests.
#[derive(Default)]
pub struct SseProviderEndpoint {
    index: EncryptedIndex,
}

impl SseProviderEndpoint {
    /// Creates an endpoint with an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the stored index (for size accounting).
    pub fn index(&self) -> &EncryptedIndex {
        &self.index
    }

    /// Serves client messages until the client closes the session.
    /// Returns the number of requests handled (uploads + searches).
    pub fn serve<C: Channel>(&mut self, channel: &mut C) -> Result<usize> {
        let mut handled = 0usize;
        loop {
            let msg = channel.recv()?;
            match msg.first() {
                Some(&TAG_UPLOAD) => {
                    self.handle_upload(&msg[1..])?;
                    handled += 1;
                }
                Some(&TAG_SEARCH) => {
                    self.handle_search(channel, &msg[1..])?;
                    handled += 1;
                }
                Some(&TAG_CLOSE) => return Ok(handled),
                Some(other) => {
                    return Err(SseError::Protocol(format!("unknown message tag {other}")))
                }
                None => return Err(SseError::Protocol("empty message".into())),
            }
        }
    }

    fn handle_upload(&mut self, body: &[u8]) -> Result<()> {
        let batch = UpdateBatch::from_wire_bytes(body)?;
        self.index.apply(&batch);
        Ok(())
    }

    fn handle_search<C: Channel>(&mut self, channel: &mut C, body: &[u8]) -> Result<()> {
        if body.len() != 64 {
            return Err(SseError::Protocol("search token must be 64 bytes".into()));
        }
        let mut label_key = [0u8; 32];
        label_key.copy_from_slice(&body[..32]);
        let mut value_key = [0u8; 32];
        value_key.copy_from_slice(&body[32..]);
        let hits = self.index.lookup(&SearchToken {
            label_key,
            value_key,
        });
        let mut reply = Vec::with_capacity(8 + hits.len() * 8);
        reply.extend_from_slice(&(hits.len() as u64).to_le_bytes());
        for id in hits {
            reply.extend_from_slice(&id.to_le_bytes());
        }
        channel.send(&reply)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pretzel_transport::run_two_party;

    #[test]
    fn upload_then_search_round_trip() {
        let emails = [
            (1u64, "quarterly earnings report attached"),
            (2u64, "lunch at noon"),
            (3u64, "earnings call rescheduled"),
        ];
        let (provider_res, client_res) = run_two_party(
            |chan| {
                let mut provider = SseProviderEndpoint::new();
                let handled = provider.serve(chan)?;
                Ok::<_, SseError>((handled, provider.index().len()))
            },
            move |chan| {
                let mut client = SseClientEndpoint::new(SseClient::from_master_key([21u8; 32]));
                for (id, body) in emails {
                    client.index_and_upload(chan, id, body)?;
                }
                let mut earnings = client.search(chan, "earnings")?;
                earnings.sort_unstable();
                let lunch = client.search(chan, "lunch")?;
                let missing = client.search(chan, "nonexistent")?;
                client.close(chan)?;
                Ok::<_, SseError>((earnings, lunch, missing))
            },
        );
        let (handled, stored) = provider_res.unwrap();
        let (earnings, lunch, missing) = client_res.unwrap();
        assert_eq!(earnings, vec![1, 3]);
        assert_eq!(lunch, vec![2]);
        assert!(missing.is_empty());
        assert_eq!(handled, 6, "3 uploads + 3 searches");
        assert!(stored > 0);
    }

    #[test]
    fn provider_rejects_malformed_messages() {
        let (provider_res, _) = run_two_party(
            |chan| SseProviderEndpoint::new().serve(chan),
            |chan| {
                chan.send(&[99u8, 1, 2, 3]).unwrap();
            },
        );
        assert!(matches!(provider_res, Err(SseError::Protocol(_))));

        let (provider_res, _) = run_two_party(
            |chan| SseProviderEndpoint::new().serve(chan),
            |chan| {
                // UPLOAD claiming 5 entries but carrying none.
                let mut msg = vec![TAG_UPLOAD];
                msg.extend_from_slice(&5u64.to_le_bytes());
                chan.send(&msg).unwrap();
            },
        );
        assert!(matches!(provider_res, Err(SseError::Protocol(_))));

        let (provider_res, _) = run_two_party(
            |chan| SseProviderEndpoint::new().serve(chan),
            |chan| {
                // SEARCH with a short token.
                let msg = vec![TAG_SEARCH, 0, 1, 2];
                chan.send(&msg).unwrap();
            },
        );
        assert!(matches!(provider_res, Err(SseError::Protocol(_))));
    }

    #[test]
    fn provider_never_sees_keywords_or_plaintext_ids_in_uploads() {
        // Capture the raw upload bytes and check they contain neither the
        // keyword bytes nor the little-endian doc id.
        let (upload_bytes, _) = run_two_party(
            |chan| chan.recv().unwrap(),
            |chan| {
                let mut client = SseClientEndpoint::new(SseClient::from_master_key([22u8; 32]));
                client
                    .index_and_upload(chan, 0xDEADBEEF, "confidential merger")
                    .unwrap();
            },
        );
        let haystack = &upload_bytes[..];
        for needle in [&b"confidential"[..], &b"merger"[..]] {
            assert!(
                !haystack.windows(needle.len()).any(|w| w == needle),
                "keyword leaked into upload"
            );
        }
        let id_bytes = 0xDEADBEEFu64.to_le_bytes();
        assert!(
            !haystack.windows(8).any(|w| w == id_bytes),
            "doc id leaked into upload"
        );
    }
}
